package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"stapio/internal/core"
	"stapio/internal/cube"
	"stapio/internal/membudget"
	"stapio/internal/pipexec"
	"stapio/internal/stap"
	"stapio/internal/tune"
)

// Config describes a detection service instance.
type Config struct {
	// Params are the STAP processing parameters; submitted cubes must
	// match Params.Dims exactly.
	Params stap.Params
	// Workers assigns per-task goroutine counts inside each pipeline
	// replica (zero fields become 1).
	Workers core.STAPNodes
	// CombinePCCFAR selects the merged pulse-compression+CFAR stage in
	// each replica.
	CombinePCCFAR bool
	// AutoTune, when non-nil, gives every replica an independent online
	// worker rebalancer (see pipexec.Config.AutoTune); each replica's
	// controller converges against that replica's own measured load. The
	// replica sources expose frontend clocks and a resizable decode pool,
	// so each replica's controller runs the joint I/O + compute solve:
	// ingest depth (concurrent uploads) and decode workers rebalance live
	// against the compute stages.
	AutoTune *tune.Config
	// StageLoad injects synthetic per-item service time into each
	// replica's compute stages (see pipexec.StageLoad) — benchmark and
	// test ballast, zero value for production.
	StageLoad pipexec.StageLoad
	// Replicas is the number of pipeline replicas CPIs are dispatched
	// across (values < 1 mean 1). Each replica is an independent
	// pipexec.Stream with its own weight-feedback chain.
	Replicas int
	// MemBudget caps the server's tracked cube/intermediate residency in
	// bytes: a server-wide membudget root is split evenly into per-replica
	// children, so one replica's ingest burst cannot starve its
	// neighbours. 0 means unlimited (accounting still runs, so /stats
	// reports residency either way). Each replica's share must cover at
	// least one CPI's residency (pipexec.MinResidency) or Serve fails.
	MemBudget int64
	// MaxInFlight bounds the CPIs admitted but not yet answered — the
	// admission-control depth. A submit that finds no free slot is
	// rejected with CodeOverloaded. Values < 1 mean 4 per replica.
	MaxInFlight int
	// Buffer is each replica's inter-stage channel depth.
	Buffer int
	// RepairRounds bounds the chunk re-request rounds per submitted CPI
	// before it is rejected as corrupt (values < 1 mean 2).
	RepairRounds int
	// MaxFrameBytes bounds a single wire frame (values < 1 mean
	// DefaultMaxFrameBytes).
	MaxFrameBytes int64
	// ConnRcvBuf caps each accepted connection's kernel receive buffer in
	// bytes (0 keeps the OS default). Besides bounding per-connection
	// server memory, a small buffer makes the ingest gate's backpressure
	// reach slow streaming producers promptly: when a reader parks waiting
	// for an ingest slot, the producer's sends stall at the socket instead
	// of a whole cube silently pre-buffering in the kernel.
	ConnRcvBuf int
	// WriteTimeout bounds one frame write to a client; a connection
	// stuck longer is dropped so it cannot stall a replica's result
	// routing (values <= 0 mean 10s).
	WriteTimeout time.Duration
	// HelloTimeout bounds the handshake (values <= 0 mean 5s).
	HelloTimeout time.Duration
}

func (c *Config) replicas() int {
	if c.Replicas < 1 {
		return 1
	}
	return c.Replicas
}

func (c *Config) maxInFlight() int {
	if c.MaxInFlight < 1 {
		return 4 * c.replicas()
	}
	return c.MaxInFlight
}

func (c *Config) repairRounds() int {
	if c.RepairRounds < 1 {
		return 2
	}
	return c.RepairRounds
}

func (c *Config) maxFrame() int64 {
	if c.MaxFrameBytes < 1 {
		return DefaultMaxFrameBytes
	}
	return c.MaxFrameBytes
}

func (c *Config) writeTimeout() time.Duration {
	if c.WriteTimeout <= 0 {
		return 10 * time.Second
	}
	return c.WriteTimeout
}

func (c *Config) helloTimeout() time.Duration {
	if c.HelloTimeout <= 0 {
		return 5 * time.Second
	}
	return c.HelloTimeout
}

// Server is a running detection service.
type Server struct {
	cfg Config

	ln     net.Listener
	ctx    context.Context
	cancel context.CancelFunc

	replicas []*replica
	rr       atomic.Uint64

	// budget is the server-wide memory budget root; each replica pipeline
	// charges a per-replica child (see Config.MemBudget).
	budget *membudget.Budget

	// tokens is the admission semaphore: one token per in-flight CPI,
	// acquired at submit acceptance (including CPIs parked awaiting
	// repair) and released when the CPI is answered.
	tokens      chan struct{}
	outstanding atomic.Int64

	draining atomic.Bool

	connMu sync.Mutex
	conns  map[*serverConn]struct{}

	bufs sync.Pool // *frameBuf

	stats counters
	start time.Time

	wg       sync.WaitGroup
	stopOnce sync.Once
	stopErr  error
}

// frameBuf wraps a pooled frame buffer (pooling the wrapper avoids boxing
// a fresh interface value per Put, same trick as pipexec's readBuf).
type frameBuf struct{ b []byte }

// New validates the configuration and builds a server (not yet listening).
func New(cfg Config) (*Server, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		cfg:    cfg,
		tokens: make(chan struct{}, cfg.maxInFlight()),
		conns:  make(map[*serverConn]struct{}),
		start:  time.Now(),
	}
	for i := 0; i < cfg.maxInFlight(); i++ {
		s.tokens <- struct{}{}
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	return s, nil
}

// Start listens on addr ("host:port"; port 0 picks a free one), launches
// the replica pool, and begins accepting producer connections.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return s.Serve(ln)
}

// Serve is Start over an existing listener. It returns once the service is
// accepting (the accept loop runs in the background; Shutdown stops it).
func (s *Server) Serve(ln net.Listener) error {
	// One budget tree for the whole service: the root carries the
	// server-wide cap, each replica charges a per-replica child, so the
	// /stats root view aggregates live residency across replicas while
	// each child bounds its own pipeline's admission.
	replicas := s.cfg.replicas()
	var perReplica int64
	if s.cfg.MemBudget > 0 {
		perReplica = s.cfg.MemBudget / int64(replicas)
	}
	s.budget = membudget.New("serve", s.cfg.MemBudget)
	for i := 0; i < replicas; i++ {
		// Built per replica so each gets its own tuner config clone and its
		// own slab pool (StreamSource pools decoded cubes internally).
		pc := replicaConfig(s.cfg)
		pc.MemBudget = s.budget.Child(fmt.Sprintf("replica%d", i), perReplica)
		src := pipexec.NewStreamSource(s.cfg.Params.Dims)
		r, err := startReplica(s.ctx, i, pc, src, s.finishJob)
		if err != nil {
			for _, prev := range s.replicas {
				prev.stop()
			}
			s.cancel()
			ln.Close()
			return err
		}
		s.replicas = append(s.replicas, r)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the listener address (useful with port 0).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		if s.cfg.ConnRcvBuf > 0 {
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetReadBuffer(s.cfg.ConnRcvBuf)
			}
		}
		s.stats.connsTotal.Add(1)
		s.stats.connsActive.Add(1)
		sc := &serverConn{srv: s, c: c,
			pending: make(map[uint64]*pendingRepair),
			streams: make(map[uint64]*streamIngest)}
		s.connMu.Lock()
		s.conns[sc] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go sc.readLoop()
	}
}

// dropConn unregisters a connection after its reader exits.
func (s *Server) dropConn(sc *serverConn) {
	s.connMu.Lock()
	delete(s.conns, sc)
	s.connMu.Unlock()
	s.stats.connsActive.Add(-1)
}

// tryAcquire takes an admission token without blocking.
func (s *Server) tryAcquire() bool {
	select {
	case <-s.tokens:
		s.outstanding.Add(1)
		return true
	default:
		return false
	}
}

func (s *Server) release() {
	s.outstanding.Add(-1)
	s.tokens <- struct{}{}
}

// getBuf leases a frame buffer with capacity for n bytes.
func (s *Server) getBuf(n int) *frameBuf {
	if v := s.bufs.Get(); v != nil {
		fb := v.(*frameBuf)
		if cap(fb.b) >= n {
			fb.b = fb.b[:n]
			return fb
		}
	}
	return &frameBuf{b: make([]byte, n)}
}

func (s *Server) putBuf(fb *frameBuf) { s.bufs.Put(fb) }

// openIngest admits one CPI onto a replica, round-robin: the replica
// claims an ingest slot, registers the job, and opens the publication the
// connection feeds chunks into.
func (s *Server) openIngest(j job, h cube.Header) (*ingest, error) {
	r := s.replicas[s.rr.Add(1)%uint64(len(s.replicas))]
	return r.open(j, h)
}

// finishJob streams one completed CPI's reports back to its producer and
// returns the admission token. Runs on the replica's result router.
func (s *Server) finishJob(j job, res pipexec.CPIResult) {
	defer s.release()
	s.stats.completed.Add(1)
	payload := append(encodeResultPrefix(int64(time.Since(j.t0))), pipexec.EncodeReports(j.seq, res.Detections)...)
	if err := j.conn.send(fResult, payload); err != nil {
		s.stats.orphaned.Add(1)
		return
	}
	s.stats.resultsSent.Add(1)
}

// Shutdown drains the service: the listener closes, producers are told to
// stop (Goodbye; further submits are rejected with CodeDraining), in-flight
// CPIs complete and their results flush, then the replicas stop and every
// connection closes. ctx bounds the drain; on expiry remaining in-flight
// CPIs are abandoned and counted as orphaned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopOnce.Do(func() {
		s.draining.Store(true)
		if s.ln != nil {
			s.ln.Close()
		}
		s.broadcastGoodbye()
		s.stopErr = s.awaitIdle(ctx)
		for _, r := range s.replicas {
			r.stop()
		}
		s.cancel()
		s.connMu.Lock()
		for sc := range s.conns {
			sc.close()
		}
		s.connMu.Unlock()
		s.wg.Wait()
		// Count abandoned jobs only now: the replicas and connection readers
		// have stopped, so nothing can still answer (or double-count) a CPI.
		// Jobs that completed during the stop were routed normally, and
		// parked repairs were released and counted by their reader's unwind;
		// whatever is still outstanding is exactly the abandoned set.
		if n := s.outstanding.Load(); n > 0 {
			s.stats.orphaned.Add(n)
		}
	})
	return s.stopErr
}

// Kill stops the service abruptly: no goodbye, no drain. The listener and
// every producer connection close immediately — from a client's point of
// view this is indistinguishable from the process being SIGKILLed (pending
// submits fail with a connection error) — then the replicas tear down and
// whatever was in flight is counted as orphaned. It is the crash end of the
// lifecycle spectrum from Shutdown, used by the fleet chaos tests to
// simulate a server dying mid-stream without leaking the test process's
// goroutines.
func (s *Server) Kill() {
	s.stopOnce.Do(func() {
		s.draining.Store(true)
		if s.ln != nil {
			s.ln.Close()
		}
		s.connMu.Lock()
		for sc := range s.conns {
			sc.close()
		}
		s.connMu.Unlock()
		for _, r := range s.replicas {
			r.stop()
		}
		s.cancel()
		s.wg.Wait()
		// Same accounting as Shutdown: with the replicas and readers stopped,
		// whatever is still outstanding is exactly the abandoned set.
		if n := s.outstanding.Load(); n > 0 {
			s.stats.orphaned.Add(n)
		}
	})
}

func (s *Server) broadcastGoodbye() {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	for sc := range s.conns {
		sc.send(fGoodbye, nil) // best-effort; errors close the conn anyway
	}
}

// awaitIdle waits for every admitted CPI to be answered.
func (s *Server) awaitIdle(ctx context.Context) error {
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for {
		if s.outstanding.Load() == 0 {
			return nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return fmt.Errorf("serve: drain incomplete, %d CPIs abandoned: %w", s.outstanding.Load(), ctx.Err())
		}
	}
}

// serverConn is one producer connection.
type serverConn struct {
	srv *Server
	c   net.Conn

	wmu    sync.Mutex
	closed atomic.Bool

	// pending holds CPIs parked mid-repair, keyed by producer seq. Only
	// the connection's reader goroutine touches it.
	pending map[uint64]*pendingRepair

	// streams holds chunk-streamed CPIs currently being published into a
	// replica (header seen, end-of-submit or repair outstanding), keyed by
	// producer seq. Only the reader goroutine touches it.
	streams map[uint64]*streamIngest
}

// streamIngest is one chunk-streamed CPI mid-flight: the replica
// publication its chunks decode into, plus the repair round state.
type streamIngest struct {
	in    *ingest
	h     cube.Header
	round int
	t0    time.Time
}

// pendingRepair is a submitted CPI whose payload had corrupt chunks; the
// frame buffer is retained while re-requested chunks arrive.
type pendingRepair struct {
	buf   *frameBuf
	h     cube.Header
	bad   []int
	round int
	t0    time.Time
}

// send writes one frame, serialising writers and bounding the write time;
// a failed or overdue write closes the connection.
func (sc *serverConn) send(ftype byte, payload []byte) error {
	if sc.closed.Load() {
		return ErrClosed
	}
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	if sc.closed.Load() {
		return ErrClosed
	}
	sc.c.SetWriteDeadline(time.Now().Add(sc.srv.cfg.writeTimeout()))
	if err := writeFrame(sc.c, ftype, payload); err != nil {
		sc.closeLocked()
		return err
	}
	return nil
}

func (sc *serverConn) close() {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.closeLocked()
}

func (sc *serverConn) closeLocked() {
	if sc.closed.CompareAndSwap(false, true) {
		sc.c.Close()
	}
}

func (sc *serverConn) reject(seq uint64, code uint32, msg string) {
	switch code {
	case CodeOverloaded:
		sc.srv.stats.rejectedOverload.Add(1)
	case CodeDraining:
		sc.srv.stats.rejectedDraining.Add(1)
	case CodeCorrupt:
		sc.srv.stats.rejectedCorrupt.Add(1)
	default:
		sc.srv.stats.rejectedOther.Add(1)
	}
	sc.send(fReject, encodeReject(seq, code, msg))
}

// readLoop is the connection's reader goroutine: handshake, then frames
// until the peer hangs up or the server shuts down.
func (sc *serverConn) readLoop() {
	defer sc.srv.wg.Done()
	defer sc.srv.dropConn(sc)
	defer sc.close()
	// CPIs parked mid-repair when the producer disappears hold admission
	// tokens and frame buffers; hand both back. Chunk-streamed CPIs left
	// open hold admission tokens, ingest slots, and leased cube slabs:
	// aborting the publication recycles the slab and makes the replica
	// skip the internal seq, so a producer dying mid-cube leaks nothing.
	defer func() {
		for seq, p := range sc.pending {
			delete(sc.pending, seq)
			sc.srv.putBuf(p.buf)
			sc.srv.release()
			sc.srv.stats.orphaned.Add(1)
		}
		for seq, st := range sc.streams {
			delete(sc.streams, seq)
			st.in.abort(ErrClosed)
			sc.srv.release()
			sc.srv.stats.orphaned.Add(1)
		}
	}()

	if err := sc.handshake(); err != nil {
		return
	}
	for {
		ftype, n, err := readPrelude(sc.c, sc.srv.cfg.maxFrame())
		if err != nil {
			return
		}
		fb := sc.srv.getBuf(n)
		if _, err := io.ReadFull(sc.c, fb.b); err != nil {
			sc.srv.putBuf(fb)
			return
		}
		switch ftype {
		case fSubmit:
			if !sc.handleSubmit(fb) { // takes ownership of fb
				return
			}
		case fSubmitHdr:
			ok := sc.handleSubmitHdr(fb.b)
			sc.srv.putBuf(fb)
			if !ok {
				return
			}
		case fChunk:
			ok := sc.handleChunk(fb.b)
			sc.srv.putBuf(fb)
			if !ok {
				return
			}
		case fSubmitEnd:
			ok := sc.handleSubmitEnd(fb.b)
			sc.srv.putBuf(fb)
			if !ok {
				return
			}
		case fRepair:
			ok := sc.handleRepair(fb.b)
			sc.srv.putBuf(fb)
			if !ok {
				return
			}
		default:
			// An unknown frame type means the stream is not speaking our
			// protocol; drop the connection rather than guess.
			sc.srv.putBuf(fb)
			return
		}
	}
}

// handshake reads and answers the hello frame under the hello deadline.
func (sc *serverConn) handshake() error {
	sc.c.SetReadDeadline(time.Now().Add(sc.srv.cfg.helloTimeout()))
	defer sc.c.SetReadDeadline(time.Time{})
	ftype, n, err := readPrelude(sc.c, sc.srv.cfg.maxFrame())
	if err != nil || ftype != fHello || n != helloLen {
		return errors.New("serve: handshake failed")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(sc.c, buf); err != nil {
		return err
	}
	dims, err := decodeHello(buf)
	if err != nil {
		return err
	}
	if dims != sc.srv.cfg.Params.Dims {
		sc.send(fReject, encodeReject(0, CodeBadDims,
			fmt.Sprintf("service processes %v, hello announced %v", sc.srv.cfg.Params.Dims, dims)))
		return errors.New("serve: dims mismatch")
	}
	return sc.send(fHelloAck, encodeHelloAck(sc.srv.cfg.maxInFlight()))
}

// handleSubmit admits, verifies, and dispatches one submitted CPI. It owns
// fb and must hand it back on every path that does not park it for repair.
// Reports false when the connection must be torn down.
func (sc *serverConn) handleSubmit(fb *frameBuf) bool {
	srv := sc.srv
	t0 := time.Now()
	h, err := cube.ParseHeader(fb.b)
	if err != nil {
		srv.putBuf(fb)
		// A submit whose cube header does not parse means the stream framing
		// can no longer be trusted. The reject carries seq 0 (the header may
		// not have yielded a real one), which the producer cannot correlate
		// with a pending CPI — so drop the connection too, failing all its
		// pending CPIs promptly instead of leaving them to dangle.
		sc.reject(0, CodeBadFrame, err.Error())
		return false
	}
	seq := h.Seq
	if h.Dims != srv.cfg.Params.Dims {
		srv.putBuf(fb)
		sc.reject(seq, CodeBadDims,
			fmt.Sprintf("service processes %v, cube is %v", srv.cfg.Params.Dims, h.Dims))
		return true
	}
	if want := h.PayloadOffset() + h.Bytes(); int64(len(fb.b)) != want {
		srv.putBuf(fb)
		sc.reject(seq, CodeBadFrame,
			fmt.Sprintf("frame is %d bytes, cube header wants %d", len(fb.b), want))
		return true
	}
	if srv.draining.Load() {
		srv.putBuf(fb)
		sc.reject(seq, CodeDraining, "server is draining")
		return true
	}
	if !srv.tryAcquire() {
		srv.putBuf(fb)
		sc.reject(seq, CodeOverloaded,
			fmt.Sprintf("all %d in-flight slots busy", srv.cfg.maxInFlight()))
		return true
	}
	// Token held from here on; every exit must answer the CPI and release.
	payload := fb.b[h.PayloadOffset():]
	if h.Chunks() > 0 {
		bad, _ := cube.VerifyChunks(&h, payload, 0, h.Chunks(), nil) // length pre-checked
		if len(bad) > 0 {
			sc.parkForRepair(fb, h, bad, t0)
			return true
		}
	} else if err := cube.VerifyPayload(h, payload); err != nil {
		// Flat (v2) payloads carry no chunk table, so there is nothing to
		// re-request — corrupt means rejected, exactly like the file path's
		// whole-file fallback.
		srv.putBuf(fb)
		sc.reject(seq, CodeCorrupt, err.Error())
		srv.release()
		return true
	}
	sc.acceptAndDispatch(fb, h, t0, false)
	return true
}

// parkForRepair stores the frame and asks the producer to re-send the
// corrupt chunks.
func (sc *serverConn) parkForRepair(fb *frameBuf, h cube.Header, bad []int, t0 time.Time) {
	srv := sc.srv
	if old, ok := sc.pending[h.Seq]; ok {
		// A duplicate in-flight seq would make repair routing ambiguous.
		srv.putBuf(old.buf)
		srv.release()
		srv.stats.orphaned.Add(1)
		delete(sc.pending, h.Seq)
	}
	sc.pending[h.Seq] = &pendingRepair{buf: fb, h: h, bad: bad, t0: t0}
	srv.stats.repairReqs.Add(1)
	sc.send(fRepairReq, encodeRepairReq(h.Seq, 0, bad))
}

// acceptAndDispatch opens a replica publication for a fully-assembled,
// chunk-verified frame, decodes the payload into the replica's pooled slab
// (sharded across the source's live decode workers), and acknowledges the
// CPI. Consumes fb.
func (sc *serverConn) acceptAndDispatch(fb *frameBuf, h cube.Header, t0 time.Time, repaired bool) {
	srv := sc.srv
	payload := fb.b[h.PayloadOffset():]
	in, err := srv.openIngest(job{conn: sc, seq: h.Seq, t0: t0}, h)
	if err == nil {
		err = in.commitPayload(h, payload)
	}
	srv.putBuf(fb)
	if err != nil {
		// Open/commit fail when a replica is stopping underneath us (a
		// drain race) or its ingest gate stayed saturated; answer the CPI
		// and settle its token either way.
		if errors.Is(err, ErrOverloaded) {
			sc.reject(h.Seq, CodeOverloaded, "replica ingest saturated")
		} else {
			sc.reject(h.Seq, CodeDraining, "server is draining")
		}
		srv.release()
		return
	}
	if repaired {
		srv.stats.repairedFrames.Add(1)
	}
	srv.stats.accepted.Add(1)
	sc.send(fAccept, encodeAccept(h.Seq))
}

// handleSubmitHdr opens a chunk-streamed CPI: it validates the header +
// chunk table, admits the CPI, and opens a replica publication the
// following fChunk frames decode straight into. Reports false when the
// connection must be torn down.
func (sc *serverConn) handleSubmitHdr(buf []byte) bool {
	srv := sc.srv
	t0 := time.Now()
	h, err := cube.ParseHeader(buf)
	if err != nil {
		// Same framing-trust failure as an unparseable submit.
		sc.reject(0, CodeBadFrame, err.Error())
		return false
	}
	seq := h.Seq
	if int64(len(buf)) != h.PayloadOffset() {
		sc.reject(seq, CodeBadFrame,
			fmt.Sprintf("submit header frame is %d bytes, header+chunk table is %d", len(buf), h.PayloadOffset()))
		return true
	}
	if h.Chunks() < 1 {
		sc.reject(seq, CodeBadFrame, "streaming submit requires a chunked (v3) cube")
		return true
	}
	if h.Dims != srv.cfg.Params.Dims {
		sc.reject(seq, CodeBadDims,
			fmt.Sprintf("service processes %v, cube is %v", srv.cfg.Params.Dims, h.Dims))
		return true
	}
	if old, ok := sc.streams[seq]; ok {
		// A duplicate in-flight seq would make chunk routing ambiguous; the
		// old publication is dropped (mirrors parkForRepair's rule).
		delete(sc.streams, seq)
		old.in.abort(ErrClosed)
		srv.release()
		srv.stats.orphaned.Add(1)
	}
	if srv.draining.Load() {
		sc.reject(seq, CodeDraining, "server is draining")
		return true
	}
	if !srv.tryAcquire() {
		sc.reject(seq, CodeOverloaded,
			fmt.Sprintf("all %d in-flight slots busy", srv.cfg.maxInFlight()))
		return true
	}
	in, err := srv.openIngest(job{conn: sc, seq: seq, t0: t0}, h)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			sc.reject(seq, CodeOverloaded, "replica ingest saturated")
		} else {
			sc.reject(seq, CodeDraining, "server is draining")
		}
		srv.release()
		return true
	}
	srv.stats.noteStreamFrame(len(buf))
	sc.streams[seq] = &streamIngest{in: in, h: h, t0: t0}
	return true
}

// handleChunk feeds one streamed chunk to its publication: the bytes are
// CRC-checked and decoded into the replica's slab directly from the pooled
// read buffer — the chunk is never copied into a file image. Chunks for
// sequence numbers we do not hold (rejected or aborted headers racing the
// producer's pipelined writes) are discarded.
func (sc *serverConn) handleChunk(buf []byte) bool {
	seq, idx, err := decodeChunkPrefix(buf)
	if err != nil {
		sc.reject(0, CodeBadFrame, err.Error())
		return false
	}
	st, ok := sc.streams[seq]
	if !ok {
		return true
	}
	sc.srv.stats.streamedChunks.Add(1)
	sc.srv.stats.noteStreamFrame(len(buf))
	// A CRC mismatch (or stray index) just leaves the chunk missing; the
	// submit-end check requests exactly the missing set for repair.
	st.in.pub.Chunk(idx, buf[chunkPrefixLen:])
	return true
}

// handleSubmitEnd closes a streamed CPI: all chunks landed clean means
// commit + accept; otherwise the missing set is re-requested through the
// standard repair exchange.
func (sc *serverConn) handleSubmitEnd(buf []byte) bool {
	srv := sc.srv
	seq, err := decodeSubmitEnd(buf)
	if err != nil {
		sc.reject(0, CodeBadFrame, err.Error())
		return false
	}
	st, ok := sc.streams[seq]
	if !ok {
		return true
	}
	if missing := st.in.pub.Missing(); len(missing) > 0 {
		srv.stats.repairReqs.Add(1)
		sc.send(fRepairReq, encodeRepairReq(seq, st.round, missing))
		return true
	}
	sc.finishStream(seq, st)
	return true
}

// finishStream commits a fully-landed streamed CPI and answers it.
func (sc *serverConn) finishStream(seq uint64, st *streamIngest) {
	srv := sc.srv
	delete(sc.streams, seq)
	repaired := st.in.pub.Repaired()
	if err := st.in.commit(); err != nil {
		// Commit only fails when the replica is stopping underneath us.
		sc.reject(seq, CodeDraining, "server is draining")
		srv.release()
		return
	}
	if repaired {
		srv.stats.repairedFrames.Add(1)
	}
	srv.stats.streamedCPIs.Add(1)
	srv.stats.accepted.Add(1)
	sc.send(fAccept, encodeAccept(seq))
}

// handleStreamRepair patches re-sent chunks into an open streamed
// publication — the streaming mirror of handleRepair, sharing its round
// rules.
func (sc *serverConn) handleStreamRepair(seq uint64, round int, chunks []repairChunk) bool {
	srv := sc.srv
	st, ok := sc.streams[seq]
	if !ok {
		// Repair for a CPI we no longer hold; ignorable.
		return true
	}
	if round != st.round {
		// Same anti-pinning rule as framed repairs (see handleRepair).
		delete(sc.streams, seq)
		st.in.abort(ErrCorrupt)
		sc.reject(seq, CodeBadFrame,
			fmt.Sprintf("repair echoes round %d, server requested round %d", round, st.round))
		srv.release()
		return true
	}
	h := &st.h
	for _, c := range chunks {
		if c.index < 0 || c.index >= h.Chunks() {
			continue
		}
		lo, hi := h.ChunkSpan(c.index)
		if int64(len(c.data)) != hi-lo {
			continue
		}
		srv.stats.chunkResends.Add(1)
		srv.stats.chunkResendBytes.Add(hi - lo)
		st.in.pub.Chunk(c.index, c.data)
	}
	missing := st.in.pub.Missing()
	if len(missing) == 0 {
		sc.finishStream(seq, st)
		return true
	}
	st.round++
	if st.round >= srv.cfg.repairRounds() {
		delete(sc.streams, seq)
		st.in.abort(ErrCorrupt)
		sc.reject(seq, CodeCorrupt,
			fmt.Sprintf("%d chunks still corrupt after %d repair rounds", len(missing), st.round))
		srv.release()
		return true
	}
	srv.stats.repairReqs.Add(1)
	sc.send(fRepairReq, encodeRepairReq(seq, st.round, missing))
	return true
}

// handleRepair patches re-sent chunk bytes into a parked CPI and either
// dispatches it clean, asks for another round, or gives up. Reports false
// when the connection must be torn down.
func (sc *serverConn) handleRepair(buf []byte) bool {
	srv := sc.srv
	seq, round, chunks, err := decodeRepair(buf)
	if err != nil {
		// Same trust failure as an unparseable submit: the reject can only
		// carry seq 0, so drop the connection to resolve pending CPIs.
		sc.reject(0, CodeBadFrame, err.Error())
		return false
	}
	p, ok := sc.pending[seq]
	if !ok {
		// Not parked as a framed repair — maybe an open streamed CPI.
		return sc.handleStreamRepair(seq, round, chunks)
	}
	if round != p.round {
		// The round field is an echo of the server's outstanding request,
		// not client state. Trusting it would let a peer that always echoes
		// round 0 pin p.round below the budget forever, parking the CPI (and
		// its admission token and frame buffer) indefinitely.
		delete(sc.pending, seq)
		srv.putBuf(p.buf)
		sc.reject(seq, CodeBadFrame,
			fmt.Sprintf("repair echoes round %d, server requested round %d", round, p.round))
		srv.release()
		return true
	}
	h := &p.h
	payload := p.buf.b[h.PayloadOffset():]
	for _, c := range chunks {
		if c.index < 0 || c.index >= h.Chunks() {
			continue
		}
		lo, hi := h.ChunkSpan(c.index)
		if int64(len(c.data)) != hi-lo {
			continue
		}
		srv.stats.chunkResends.Add(1)
		srv.stats.chunkResendBytes.Add(hi - lo)
		copy(payload[lo:hi], c.data)
	}
	// Re-verify only the chunks that were bad; good ones cannot regress.
	remaining := p.bad[:0]
	for _, i := range p.bad {
		if cube.VerifyChunk(h, payload, i) != nil {
			remaining = append(remaining, i)
		}
	}
	p.bad = remaining
	if len(p.bad) == 0 {
		delete(sc.pending, seq)
		sc.acceptAndDispatch(p.buf, p.h, p.t0, true)
		return true
	}
	p.round++
	if p.round >= srv.cfg.repairRounds() {
		delete(sc.pending, seq)
		srv.putBuf(p.buf)
		sc.reject(seq, CodeCorrupt,
			fmt.Sprintf("%d chunks still corrupt after %d repair rounds", len(p.bad), p.round))
		srv.release()
		return true
	}
	srv.stats.repairReqs.Add(1)
	sc.send(fRepairReq, encodeRepairReq(seq, p.round, p.bad))
	return true
}
