package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"stapio/internal/cube"
)

func TestHelloRoundTrip(t *testing.T) {
	d := cube.Dims{Channels: 4, Pulses: 16, Ranges: 64}
	got, err := decodeHello(encodeHello(d))
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatalf("hello round trip: got %v, want %v", got, d)
	}
	if _, err := decodeHello(encodeHello(cube.Dims{})); err == nil {
		t.Fatal("invalid dims survived the hello round trip")
	}
	bad := encodeHello(d)
	copy(bad[0:4], "XXXX")
	if _, err := decodeHello(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestHelloAckRoundTrip(t *testing.T) {
	n, err := decodeHelloAck(encodeHelloAck(12))
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("hello-ack round trip: got %d, want 12", n)
	}
}

func TestRejectRoundTrip(t *testing.T) {
	seq, code, msg, err := decodeReject(encodeReject(42, CodeOverloaded, "busy"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || code != CodeOverloaded || msg != "busy" {
		t.Fatalf("reject round trip: got (%d, %d, %q)", seq, code, msg)
	}
}

func TestRejectErrorTypes(t *testing.T) {
	cases := []struct {
		code uint32
		want error
	}{
		{CodeOverloaded, ErrOverloaded},
		{CodeDraining, ErrDraining},
		{CodeCorrupt, ErrCorrupt},
	}
	for _, c := range cases {
		if err := rejectError(c.code, "x"); !errors.Is(err, c.want) {
			t.Errorf("code %d: %v does not match %v", c.code, err, c.want)
		}
	}
	if err := rejectError(CodeBadDims, "geometry"); !strings.Contains(err.Error(), "bad-dims") {
		t.Errorf("bad-dims reject error %q lacks its code name", err)
	}
}

func TestRepairReqRoundTrip(t *testing.T) {
	seq, round, chunks, err := decodeRepairReq(encodeRepairReq(7, 2, []int{1, 5, 9}))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 || round != 2 || len(chunks) != 3 || chunks[0] != 1 || chunks[2] != 9 {
		t.Fatalf("repair-req round trip: got (%d, %d, %v)", seq, round, chunks)
	}
	if _, _, _, err := decodeRepairReq(encodeRepairReq(7, 2, []int{1, 5})[:18]); err == nil {
		t.Fatal("truncated repair request accepted")
	}
}

func TestRepairRoundTrip(t *testing.T) {
	in := []repairChunk{{index: 3, data: []byte("abcdefgh")}, {index: 0, data: []byte("zz")}}
	seq, round, out, err := decodeRepair(encodeRepair(9, 1, in))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 9 || round != 1 || len(out) != 2 {
		t.Fatalf("repair round trip: got (%d, %d, %d chunks)", seq, round, len(out))
	}
	for i := range in {
		if out[i].index != in[i].index || !bytes.Equal(out[i].data, in[i].data) {
			t.Fatalf("chunk %d mismatch: got (%d, %q)", i, out[i].index, out[i].data)
		}
	}
	enc := encodeRepair(9, 1, in)
	if _, _, _, err := decodeRepair(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated repair payload accepted")
	}
	if _, _, _, err := decodeRepair(append(enc, 0)); err == nil {
		t.Fatal("repair payload with trailing bytes accepted")
	}
}

// TestDecodeRepairBoundsChunkCount pins the allocation guard: a 16-byte
// repair frame declaring 2^32-1 chunks must be rejected by the length
// check, not pre-allocated (which would be a ~137 GB remote OOM).
func TestDecodeRepairBoundsChunkCount(t *testing.T) {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf[0:8], 1)
	binary.LittleEndian.PutUint32(buf[8:12], 0)
	binary.LittleEndian.PutUint32(buf[12:16], 0xFFFFFFFF)
	if _, _, _, err := decodeRepair(buf); err == nil {
		t.Fatal("absurd repair chunk count accepted")
	}
	// The same bound must hold when the declared count merely exceeds what
	// the frame could carry, not just at the uint32 extreme.
	buf = encodeRepair(1, 0, []repairChunk{{index: 0, data: []byte("abcd")}})
	binary.LittleEndian.PutUint32(buf[12:16], 3)
	if _, _, _, err := decodeRepair(buf); err == nil {
		t.Fatal("overdeclared repair chunk count accepted")
	}
}

func TestReadPreludeEnforcesLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, fSubmit, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readPrelude(&buf, 50); err == nil {
		t.Fatal("oversized frame passed the prelude limit")
	}
	buf.Reset()
	if err := writeFrame(&buf, fGoodbye, nil); err != nil {
		t.Fatal(err)
	}
	ftype, n, err := readPrelude(&buf, 50)
	if err != nil || ftype != fGoodbye || n != 0 {
		t.Fatalf("empty frame prelude: got (%d, %d, %v)", ftype, n, err)
	}
}
