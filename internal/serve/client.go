package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"stapio/internal/cube"
	"stapio/internal/pfs"
	"stapio/internal/pipexec"
	"stapio/internal/stap"
)

// Client is a producer connection to a detection service. Submissions are
// asynchronous: Submit returns once the frame is written, and the CPI's
// detection reports (or its typed rejection) arrive on Results in
// completion order. The caller must drain Results; it is closed after
// Close (or a server-side disconnect) once every outstanding submission
// has been answered or failed.
type Client struct {
	c   net.Conn
	opt Options

	wmu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]*submission

	results chan Result
	closed  atomic.Bool
	// draining flips when the server says Goodbye; further Submits fail
	// fast with ErrDraining instead of a wire round-trip.
	draining atomic.Bool

	// maxInFlight is the server's advertised admission capacity.
	maxInFlight int

	repairReqs     atomic.Int64
	chunkResends   atomic.Int64
	corruptions    atomic.Int64
	framesRepaired atomic.Int64

	readerDone chan struct{}
}

// Options configure a client connection.
type Options struct {
	// Dims is the cube geometry this producer will submit; the handshake
	// fails unless it matches the service's pipeline. Required.
	Dims cube.Dims
	// ResultBuffer is the Results channel depth (values < 1 mean 64).
	ResultBuffer int
	// DialTimeout bounds the TCP dial plus handshake (<= 0 means 5s).
	DialTimeout time.Duration
	// KeepAlive is the TCP keepalive probe period, so a black-holed server
	// (crashed host, dropped route) surfaces as a connection error instead
	// of a read that hangs forever (0 means 15s; < 0 disables).
	KeepAlive time.Duration
	// WriteTimeout bounds one frame write (<= 0 means 10s).
	WriteTimeout time.Duration
	// MaxFrameBytes bounds received frames (< 1 means DefaultMaxFrameBytes).
	MaxFrameBytes int64
	// Faults, when non-nil, deterministically corrupts submitted payload
	// chunks on the wire — the connection-level analogue of the striped
	// store's fault plan, for exercising the chunk re-request repair path.
	// Re-sent chunks re-draw with the repair round as the attempt, exactly
	// like file-path retries.
	Faults *pfs.FaultPlan
	// Streaming sends chunked (v3) submissions as streamed ingest: the
	// header + chunk table first, then each chunk as its own frame, then
	// an end marker. The server CRC-checks and decodes every chunk
	// straight from its connection read buffer into a replica's pooled
	// cube slab — no whole-cube file image is buffered on either ingest
	// hop. Flat (v2) frames fall back to the framed submit.
	Streaming bool
	// ChunkPace, with Streaming, spaces consecutive chunk frames by this
	// duration — a synthetic slow producer for benchmarks and tests. 0
	// sends the whole submission as one vectored write.
	ChunkPace time.Duration
	// SendSndBuf caps the connection's kernel send buffer in bytes (0
	// keeps the OS default). With paced streaming it keeps the producer's
	// slowness real on the wire: a server applying ingest backpressure
	// stalls the producer's writes instead of the pace draining unseen
	// into a deep socket buffer.
	SendSndBuf int
}

func (o *Options) resultBuffer() int {
	if o.ResultBuffer < 1 {
		return 64
	}
	return o.ResultBuffer
}

func (o *Options) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return o.DialTimeout
}

func (o *Options) keepAlive() time.Duration {
	if o.KeepAlive == 0 {
		return 15 * time.Second
	}
	return o.KeepAlive
}

func (o *Options) writeTimeout() time.Duration {
	if o.WriteTimeout <= 0 {
		return 10 * time.Second
	}
	return o.WriteTimeout
}

func (o *Options) maxFrame() int64 {
	if o.MaxFrameBytes < 1 {
		return DefaultMaxFrameBytes
	}
	return o.MaxFrameBytes
}

// Result is the outcome of one submitted CPI.
type Result struct {
	Seq        uint64
	Detections []stap.Detection
	// Latency is submit-to-result wall clock measured at the client
	// (includes both network directions).
	Latency time.Duration
	// ServerLatency is receipt-to-result measured at the server.
	ServerLatency time.Duration
	// Err is non-nil when the CPI was rejected or the connection died;
	// errors.Is-match against ErrOverloaded / ErrDraining / ErrCorrupt /
	// ErrClosed.
	Err error
	// Accepted reports whether the server acknowledged the CPI (fAccept)
	// before this outcome. An ErrClosed result with Accepted true means the
	// server may still process the CPI even though its answer is lost —
	// resubmitting it elsewhere risks processing it twice, which is the
	// retry-safety line a failover layer must respect. A rejection or a
	// connection loss with Accepted false means the server discarded or
	// never admitted the CPI, so a resubmit is safe.
	Accepted bool
}

// submission tracks one in-flight CPI.
type submission struct {
	frame []byte // the clean encoded cube, retained for chunk re-sends
	h     *cube.Header
	t0    time.Time
	// repaired marks that the server requested at least one chunk re-send
	// for this CPI; only touched from the read loop.
	repaired bool
	// accepted marks that the server acknowledged the CPI (fAccept); only
	// touched from the read loop.
	accepted bool
}

// Dial connects to a detection service and performs the handshake.
func Dial(addr string, opt Options) (*Client, error) {
	if !opt.Dims.Valid() {
		return nil, fmt.Errorf("serve: client options need valid dims, got %v", opt.Dims)
	}
	d := net.Dialer{Timeout: opt.dialTimeout(), KeepAlive: opt.keepAlive()}
	c, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if opt.SendSndBuf > 0 {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetWriteBuffer(opt.SendSndBuf)
		}
	}
	return DialConn(c, opt)
}

// DialConn is Dial over an established connection — any net.Conn that
// honours deadlines works (an in-process net.Pipe half, a TLS-wrapped
// conn, a test transport). It performs the handshake and takes ownership
// of the connection, closing it on failure.
func DialConn(c net.Conn, opt Options) (*Client, error) {
	if !opt.Dims.Valid() {
		c.Close()
		return nil, fmt.Errorf("serve: client options need valid dims, got %v", opt.Dims)
	}
	cl := &Client{
		c:          c,
		opt:        opt,
		pending:    make(map[uint64]*submission),
		results:    make(chan Result, opt.resultBuffer()),
		readerDone: make(chan struct{}),
	}
	if err := cl.handshake(); err != nil {
		c.Close()
		return nil, err
	}
	go cl.readLoop()
	return cl, nil
}

func (cl *Client) handshake() error {
	cl.c.SetDeadline(time.Now().Add(cl.opt.dialTimeout()))
	defer cl.c.SetDeadline(time.Time{})
	if err := writeFrame(cl.c, fHello, encodeHello(cl.opt.Dims)); err != nil {
		return err
	}
	ftype, n, err := readPrelude(cl.c, cl.opt.maxFrame())
	if err != nil {
		return fmt.Errorf("serve: handshake: %w", err)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(cl.c, buf); err != nil {
		return fmt.Errorf("serve: handshake: %w", err)
	}
	switch ftype {
	case fHelloAck:
		cl.maxInFlight, err = decodeHelloAck(buf)
		return err
	case fReject:
		_, code, msg, derr := decodeReject(buf)
		if derr != nil {
			return derr
		}
		return rejectError(code, msg)
	default:
		return fmt.Errorf("serve: handshake got unexpected frame type %d", ftype)
	}
}

// MaxInFlight returns the server's advertised admission capacity — a sane
// upper bound for a closed-loop producer's window.
func (cl *Client) MaxInFlight() int { return cl.maxInFlight }

// Results delivers each submitted CPI's outcome in completion order.
func (cl *Client) Results() <-chan Result { return cl.results }

// RepairStats reports the chunk re-requests this client has served and the
// corruptions its fault plan injected.
func (cl *Client) RepairStats() (repairReqs, chunkResends, injectedCorruptions int64) {
	return cl.repairReqs.Load(), cl.chunkResends.Load(), cl.corruptions.Load()
}

// RepairedFrames counts the CPIs that needed at least one chunk re-send and
// still came back with a result — delivered despite wire corruption.
func (cl *Client) RepairedFrames() int64 { return cl.framesRepaired.Load() }

// Submit sends one encoded cube file (flat v2 or chunked v3; chunked is
// repairable on the wire). The frame's header carries the CPI sequence
// number, which must be unique among this connection's in-flight CPIs; the
// caller must not mutate frame until the CPI's Result arrives. Returns the
// submitted sequence number.
func (cl *Client) Submit(frame []byte) (uint64, error) {
	if cl.closed.Load() {
		return 0, ErrClosed
	}
	if cl.draining.Load() {
		return 0, ErrDraining
	}
	h, err := cube.ParseHeader(frame)
	if err != nil {
		return 0, fmt.Errorf("serve: submit: %w", err)
	}
	sub := &submission{frame: frame, h: &h, t0: time.Now()}
	cl.mu.Lock()
	if _, dup := cl.pending[h.Seq]; dup {
		cl.mu.Unlock()
		return 0, fmt.Errorf("serve: seq %d is already in flight on this connection", h.Seq)
	}
	cl.pending[h.Seq] = sub
	cl.mu.Unlock()

	if cl.opt.Streaming && h.Chunks() > 0 {
		if err := cl.submitStream(frame, &h); err != nil {
			cl.take(h.Seq)
			return 0, err
		}
		return h.Seq, nil
	}
	wire := frame
	if cl.opt.Faults != nil {
		wire = cl.corruptCopy(frame, &h, 0)
	}
	if err := cl.write(fSubmit, wire); err != nil {
		cl.take(h.Seq)
		return 0, err
	}
	return h.Seq, nil
}

// submitStream sends one chunked cube as streamed ingest frames. The whole
// submission goes out under one write-lock hold, so concurrent submitters
// never interleave a CPI's frames; with no pacing it is a single vectored
// write (header, every chunk, end marker — zero payload copies).
func (cl *Client) submitStream(frame []byte, h *cube.Header) error {
	hdr := frame[:h.PayloadOffset()]
	payload := frame[h.PayloadOffset():]
	n := h.Chunks()
	prefixes := make([]byte, n*chunkPrefixLen)
	chunkData := make([][]byte, n)
	for i := 0; i < n; i++ {
		lo, hi := h.ChunkSpan(i)
		data := payload[lo:hi]
		if cl.opt.Faults != nil {
			data = cl.corruptChunk(data, h, i, 0)
		}
		putChunkPrefix(prefixes[i*chunkPrefixLen:(i+1)*chunkPrefixLen], h.Seq, i)
		chunkData[i] = data
	}
	end := encodeSubmitEnd(h.Seq)

	cl.wmu.Lock()
	defer cl.wmu.Unlock()
	if cl.closed.Load() {
		return ErrClosed
	}
	if cl.opt.ChunkPace <= 0 {
		frames := make([]frameSpans, 0, n+2)
		frames = append(frames, frameSpans{ftype: fSubmitHdr, spans: [][]byte{hdr}})
		for i := 0; i < n; i++ {
			frames = append(frames, frameSpans{ftype: fChunk,
				spans: [][]byte{prefixes[i*chunkPrefixLen : (i+1)*chunkPrefixLen], chunkData[i]}})
		}
		frames = append(frames, frameSpans{ftype: fSubmitEnd, spans: [][]byte{end}})
		cl.c.SetWriteDeadline(time.Now().Add(cl.opt.writeTimeout()))
		if err := writeFrames(cl.c, frames); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		return nil
	}
	// Paced mode: chunk frames go out individually, ChunkPace apart — a
	// synthetic slow producer whose transfer time the server's per-replica
	// ingest window can overlap across connections. A repair request
	// arriving mid-submit waits for the lock, never deadlocks: this send
	// finishes regardless of the server.
	writeOne := func(ftype byte, spans ...[]byte) error {
		cl.c.SetWriteDeadline(time.Now().Add(cl.opt.writeTimeout()))
		if err := writeFrames(cl.c, []frameSpans{{ftype: ftype, spans: spans}}); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		return nil
	}
	if err := writeOne(fSubmitHdr, hdr); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		time.Sleep(cl.opt.ChunkPace)
		if cl.closed.Load() {
			return ErrClosed
		}
		if err := writeOne(fChunk, prefixes[i*chunkPrefixLen:(i+1)*chunkPrefixLen], chunkData[i]); err != nil {
			return err
		}
	}
	return writeOne(fSubmitEnd, end)
}

// write sends one frame under the write lock and deadline.
func (cl *Client) write(ftype byte, payload []byte) error {
	cl.wmu.Lock()
	defer cl.wmu.Unlock()
	if cl.closed.Load() {
		return ErrClosed
	}
	cl.c.SetWriteDeadline(time.Now().Add(cl.opt.writeTimeout()))
	if err := writeFrame(cl.c, ftype, payload); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

// corruptCopy returns a copy of frame with the fault plan applied to its
// payload chunks: each chunk independently draws (seq, chunk, attempt) and
// a corrupt draw flips one byte, which the per-chunk CRC will catch
// server-side. Flat frames draw once for the whole payload.
func (cl *Client) corruptCopy(frame []byte, h *cube.Header, attempt int) []byte {
	out := make([]byte, len(frame))
	copy(out, frame)
	payload := out[h.PayloadOffset():]
	chunks := h.Chunks()
	if chunks == 0 {
		if o := cl.opt.Faults.ReadOutcome("net", int64(h.Seq), 0, attempt); o.Corrupt {
			payload[cl.opt.Faults.CorruptOffset("net", int64(h.Seq), attempt, int64(len(payload)))] ^= 0x40
			cl.corruptions.Add(1)
		}
		return out
	}
	for i := 0; i < chunks; i++ {
		if o := cl.opt.Faults.ReadOutcome("net", int64(h.Seq), i<<16|attempt, attempt); !o.Corrupt {
			continue
		}
		lo, hi := h.ChunkSpan(i)
		off := cl.opt.Faults.CorruptOffset("net", int64(h.Seq), i<<16|attempt, hi-lo)
		payload[lo+off] ^= 0x40
		cl.corruptions.Add(1)
	}
	return out
}

// corruptChunk applies the fault plan to one re-sent chunk.
func (cl *Client) corruptChunk(data []byte, h *cube.Header, chunk, attempt int) []byte {
	if cl.opt.Faults == nil {
		return data
	}
	if o := cl.opt.Faults.ReadOutcome("net", int64(h.Seq), chunk<<16|attempt, attempt); !o.Corrupt {
		return data
	}
	out := make([]byte, len(data))
	copy(out, data)
	out[cl.opt.Faults.CorruptOffset("net", int64(h.Seq), chunk<<16|attempt, int64(len(out)))] ^= 0x40
	cl.corruptions.Add(1)
	return out
}

func (cl *Client) take(seq uint64) (*submission, bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	sub, ok := cl.pending[seq]
	if ok {
		delete(cl.pending, seq)
	}
	return sub, ok
}

func (cl *Client) lookup(seq uint64) (*submission, bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	sub, ok := cl.pending[seq]
	return sub, ok
}

// readLoop routes server frames until the connection dies, then fails
// every outstanding submission and closes Results.
func (cl *Client) readLoop() {
	defer close(cl.readerDone)
	defer func() {
		cl.closed.Store(true)
		cl.c.Close()
		cl.mu.Lock()
		stranded := make([]uint64, 0, len(cl.pending))
		for seq := range cl.pending {
			stranded = append(stranded, seq)
		}
		cl.mu.Unlock()
		for _, seq := range stranded {
			if sub, ok := cl.take(seq); ok {
				cl.results <- Result{Seq: seq, Err: ErrClosed, Accepted: sub.accepted}
			}
		}
		close(cl.results)
	}()
	for {
		ftype, n, err := readPrelude(cl.c, cl.opt.maxFrame())
		if err != nil {
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(cl.c, buf); err != nil {
			return
		}
		switch ftype {
		case fAccept:
			// Verified and dispatched: the server will never ask for
			// repairs now, so the retained frame can be collected even if
			// the caller reuses its buffer.
			if seq, err := decodeAccept(buf); err == nil {
				if sub, ok := cl.lookup(seq); ok {
					sub.frame = nil
					sub.accepted = true
				}
			}
		case fReject:
			seq, code, msg, derr := decodeReject(buf)
			if derr != nil {
				return
			}
			if sub, ok := cl.take(seq); ok {
				cl.results <- Result{Seq: seq, Latency: time.Since(sub.t0), Err: rejectError(code, msg)}
			}
		case fRepairReq:
			if !cl.handleRepairReq(buf) {
				return
			}
		case fResult:
			if n < 8 {
				return
			}
			serverNs := int64(binary.LittleEndian.Uint64(buf[0:8]))
			seq, dets, derr := pipexec.DecodeReports(buf[8:])
			if derr != nil {
				return
			}
			if sub, ok := cl.take(seq); ok {
				if sub.repaired {
					cl.framesRepaired.Add(1)
				}
				cl.results <- Result{
					Seq:           seq,
					Detections:    dets,
					Latency:       time.Since(sub.t0),
					ServerLatency: time.Duration(serverNs),
					Accepted:      true,
				}
			}
		case fGoodbye:
			cl.draining.Store(true)
		default:
			return
		}
	}
}

// handleRepairReq re-sends the requested chunks from the retained clean
// frame; reports false when the connection should be torn down.
func (cl *Client) handleRepairReq(buf []byte) bool {
	seq, round, idxs, err := decodeRepairReq(buf)
	if err != nil {
		return false
	}
	cl.repairReqs.Add(1)
	sub, ok := cl.lookup(seq)
	if !ok || sub.frame == nil {
		// Nothing retained (already accepted or unknown); the server's
		// repair rounds will exhaust and reject.
		return true
	}
	sub.repaired = true
	h := sub.h
	payload := sub.frame[h.PayloadOffset():]
	chunks := make([]repairChunk, 0, len(idxs))
	for _, i := range idxs {
		if i < 0 || i >= h.Chunks() {
			continue
		}
		lo, hi := h.ChunkSpan(i)
		data := cl.corruptChunk(payload[lo:hi], h, i, round+1)
		chunks = append(chunks, repairChunk{index: i, data: data})
	}
	cl.chunkResends.Add(int64(len(chunks)))
	return cl.write(fRepair, encodeRepair(seq, round, chunks)) == nil
}

// Close tears the connection down. Outstanding submissions fail with
// ErrClosed on Results, which is then closed; Close returns once the
// reader has finished.
func (cl *Client) Close() error {
	if cl.closed.CompareAndSwap(false, true) {
		cl.c.Close()
	}
	<-cl.readerDone
	return nil
}
