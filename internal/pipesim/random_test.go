package pipesim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stapio/internal/core"
	"stapio/internal/machine"
	"stapio/internal/pfs"
)

// randomPipeline builds a random DAG pipeline: a chain with occasional
// skip edges and lag-1 side taps, random workloads and node counts.
func randomPipeline(rng *rand.Rand) *core.Pipeline {
	n := rng.Intn(6) + 2
	tasks := make([]core.Task, n)
	for i := range tasks {
		tasks[i] = core.Task{
			Name:  string(rune('A' + i)),
			Nodes: rng.Intn(8) + 1,
			Flops: float64(rng.Intn(400)+50) * 1e6,
		}
		if i > 0 {
			tasks[i].Deps = append(tasks[i].Deps, core.Dep{
				From:  i - 1,
				Bytes: float64(rng.Intn(4 << 20)),
			})
			// Occasional skip edge from an earlier task.
			if i >= 2 && rng.Intn(3) == 0 {
				tasks[i].Deps = append(tasks[i].Deps, core.Dep{
					From:  rng.Intn(i - 1),
					Bytes: float64(rng.Intn(1 << 20)),
				})
			}
			// Occasional temporal edge.
			if i >= 2 && rng.Intn(4) == 0 {
				tasks[i].Deps = append(tasks[i].Deps, core.Dep{
					From:  rng.Intn(i),
					Lag:   1,
					Bytes: float64(rng.Intn(1 << 18)),
				})
			}
		}
	}
	return &core.Pipeline{Name: "random", Tasks: tasks}
}

// TestRandomPipelinesDESMatchesAnalytic cross-validates the discrete-event
// simulator against the closed-form equations on random task graphs, not
// just the STAP graph — throughput within 3%, latency within 10%.
func TestRandomPipelinesDESMatchesAnalytic(t *testing.T) {
	prof := machine.Paragon()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPipeline(rng)
		if err := p.Validate(); err != nil {
			t.Logf("seed %d: invalid pipeline: %v", seed, err)
			return false
		}
		a, err := core.Analyze(p, prof, pfs.Config{})
		if err != nil {
			t.Logf("seed %d: analyze: %v", seed, err)
			return false
		}
		// The analytic equations assume sufficient inter-stage buffering;
		// with skip edges spanning several stages the default double
		// buffering genuinely throttles the pipeline (a real effect the
		// equations do not model), so give the DES ample buffers here.
		opts := DefaultOptions()
		opts.BufferDepth = len(p.Tasks) + 2
		res, err := Measure(p, prof, pfs.Config{}, opts)
		if err != nil {
			t.Logf("seed %d: measure: %v", seed, err)
			return false
		}
		if rel := math.Abs(res.Throughput-a.Throughput) / a.Throughput; rel > 0.03 {
			t.Logf("seed %d: throughput DES %.4f vs analytic %.4f (%.1f%%)",
				seed, res.Throughput, a.Throughput, rel*100)
			return false
		}
		if rel := math.Abs(res.Latency-a.Latency) / a.Latency; rel > 0.10 {
			t.Logf("seed %d: latency DES %.4f vs analytic %.4f (%.1f%%)",
				seed, res.Latency, a.Latency, rel*100)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRandomPipelinesMergeNeverHurts checks the task-combination theorems
// on random graphs: wherever a merge is legal, it never reduces analytic
// throughput and never increases analytic latency.
func TestRandomPipelinesMergeNeverHurts(t *testing.T) {
	prof := machine.Paragon()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPipeline(rng)
		a, err := core.Analyze(p, prof, pfs.Config{})
		if err != nil {
			return false
		}
		merges := 0
		for i := 0; i < len(p.Tasks)-1; i++ {
			for j := i + 1; j < len(p.Tasks); j++ {
				m, err := p.Merge(i, j)
				if err != nil {
					continue // illegal merge (no edge, temporal, etc.)
				}
				merges++
				am, err := core.Analyze(m, prof, pfs.Config{})
				if err != nil {
					t.Logf("seed %d: merged analyze: %v", seed, err)
					return false
				}
				// 1% slack: merging enlarges the combined task's node
				// count, so upstream producers address more receivers
				// (one extra message latency each) — a second-order cost
				// the paper's algebra neglects.
				if am.Throughput < a.Throughput*0.99 {
					t.Logf("seed %d: merge(%d,%d) lowered throughput %.4f -> %.4f",
						seed, i, j, a.Throughput, am.Throughput)
					return false
				}
				if am.Latency > a.Latency*1.01 {
					t.Logf("seed %d: merge(%d,%d) raised latency %.4f -> %.4f",
						seed, i, j, a.Latency, am.Latency)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRandomPipelinesDeterministic re-runs each random pipeline and
// demands bit-identical results.
func TestRandomPipelinesDeterministic(t *testing.T) {
	prof := machine.Paragon()
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomPipeline(rng)
		r1, err := Run(p, prof, pfs.Config{}, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(p, prof, pfs.Config{}, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if r1.Throughput != r2.Throughput || r1.Latency != r2.Latency || r1.Events != r2.Events {
			t.Fatalf("seed %d: nondeterministic simulation", seed)
		}
	}
}
