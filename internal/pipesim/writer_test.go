package pipesim

import (
	"testing"

	"stapio/internal/core"
	"stapio/internal/machine"
	"stapio/internal/pfs"
)

func TestRadarWriterContention(t *testing.T) {
	// With the radar writing its staging files on the same stripe servers,
	// the bottlenecked configuration (PFS-16 at 200 nodes) loses further
	// throughput; the unbottlenecked PFS-64 barely notices.
	prof := machine.Paragon()
	p, err := core.BuildEmbedded(paperWorkloads(), case1Nodes().Scale(4))
	if err != nil {
		t.Fatal(err)
	}
	quiet := DefaultOptions()
	noisy := DefaultOptions()
	noisy.RadarWriteBytes = 16 << 20 // the radar refills one cube per CPI

	for _, cfg := range []struct {
		fs      pfs.Config
		maxDrop float64 // largest acceptable relative throughput drop
		minDrop float64 // smallest expected drop
		hasDrop bool
	}{
		{pfs.ParagonPFS(16), 0.60, 0.15, true},
		{pfs.ParagonPFS(64), 0.10, 0, false},
	} {
		rq, err := Run(p, prof, cfg.fs, quiet)
		if err != nil {
			t.Fatal(err)
		}
		rn, err := Run(p, prof, cfg.fs, noisy)
		if err != nil {
			t.Fatal(err)
		}
		drop := (rq.Throughput - rn.Throughput) / rq.Throughput
		if cfg.hasDrop && drop < cfg.minDrop {
			t.Errorf("%s: writer contention drop %.1f%% too small", cfg.fs.Name, drop*100)
		}
		if drop > cfg.maxDrop {
			t.Errorf("%s: writer contention drop %.1f%% too large", cfg.fs.Name, drop*100)
		}
		if drop < -0.02 {
			t.Errorf("%s: writer load should never raise throughput (%.1f%%)", cfg.fs.Name, drop*100)
		}
	}
}

func TestRadarWriterValidation(t *testing.T) {
	p, err := core.BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.RadarWriteBytes = -1
	if _, err := Run(p, machine.Paragon(), pfs.ParagonPFS(16), opts); err == nil {
		t.Error("expected error for negative writer volume")
	}
}

func TestReportOutputWrites(t *testing.T) {
	// Attaching report output to the CFAR task adds a write phase. On an
	// async FS it is hidden; on a sync FS it shows up as WriteWait and the
	// CFAR service grows.
	prof := machine.Paragon()
	base, err := core.BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	withOut, err := core.AttachReportOutput(base, 1<<20) // 1 MiB of reports per CPI
	if err != nil {
		t.Fatal(err)
	}
	async := pfs.ParagonPFS(64)
	sync := async
	sync.Async = false
	sync.Name = "PFS-64-sync"

	opts := DefaultOptions()
	last := len(base.Tasks) - 1

	ra, err := Run(withOut, prof, async, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Tasks[last].WriteWait != 0 {
		t.Errorf("async write wait %.4f, want 0 (fire-and-forget)", ra.Tasks[last].WriteWait)
	}

	rs0, err := Run(base, prof, sync, opts)
	if err != nil {
		t.Fatal(err)
	}
	rs1, err := Run(withOut, prof, sync, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rs1.Tasks[last].WriteWait <= 0 {
		t.Error("sync report write should block the CFAR task")
	}
	if rs1.Latency <= rs0.Latency {
		t.Errorf("sync report output should raise latency: %.3f vs %.3f", rs1.Latency, rs0.Latency)
	}
	// Analytic agreement: the Write term shows in the analysis too.
	a, err := core.Analyze(withOut, prof, sync)
	if err != nil {
		t.Fatal(err)
	}
	if a.Timings[last].Write <= 0 {
		t.Error("analysis should include a write term")
	}
	// The contention-free analytic write time is a lower bound; in the DES
	// the report write shares stripe servers with the in-flight cube read,
	// so the measured wait may exceed it — but not unboundedly.
	if rs1.Tasks[last].WriteWait < a.Timings[last].Write*0.99 {
		t.Errorf("measured write wait %.4f below contention-free bound %.4f",
			rs1.Tasks[last].WriteWait, a.Timings[last].Write)
	}
	if rs1.Tasks[last].WriteWait > 4*a.Timings[last].Write {
		t.Errorf("measured write wait %.4f implausibly above analytic %.4f",
			rs1.Tasks[last].WriteWait, a.Timings[last].Write)
	}
}

func TestAttachReportOutputErrors(t *testing.T) {
	base, err := core.BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.AttachReportOutput(base, -1); err == nil {
		t.Error("expected error for negative volume")
	}
	out, err := core.AttachReportOutput(base, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tasks[len(out.Tasks)-1].WriteBytes != 4096 {
		t.Error("WriteBytes not attached")
	}
	if base.Tasks[len(base.Tasks)-1].WriteBytes != 0 {
		t.Error("AttachReportOutput must not mutate the original")
	}
}

func TestMergePreservesWriteBytes(t *testing.T) {
	base, err := core.BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	withOut, err := core.AttachReportOutput(base, 4096)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.CombinePCCFAR(withOut)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Tasks[len(m.Tasks)-1].WriteBytes; got != 4096 {
		t.Errorf("merged WriteBytes = %v, want 4096", got)
	}
}

func TestStagingSlotConflicts(t *testing.T) {
	// The paper's four round-robin staging files keep the radar's refill
	// of a slot clear of the pipeline's reads; with only one shared file
	// every refill collides with an in-flight or imminent read.
	prof := machine.Paragon()
	p, err := core.BuildEmbedded(paperWorkloads(), case1Nodes().Scale(4))
	if err != nil {
		t.Fatal(err)
	}
	conflicts := func(files int, fsCfg pfs.Config) int {
		opts := DefaultOptions()
		opts.RadarWriteBytes = 16 << 20
		opts.StagingFiles = files
		res, err := Run(p, prof, fsCfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.StagingConflicts
	}
	// At the saturated stripe factor (16 at 200 nodes) the writes drain
	// slower than the slot-reuse period, so even four files conflict —
	// though far less than one; with stripe factor 64 the writes drain
	// quickly and the four-file round-robin is essentially clean. That is
	// the quantitative form of the paper's "minimized" claim.
	c1 := conflicts(1, pfs.ParagonPFS(16))
	c4 := conflicts(4, pfs.ParagonPFS(16))
	if c1 == 0 {
		t.Error("one staging file should produce read/write conflicts")
	}
	if c4 >= c1 {
		t.Errorf("four staging files (%d conflicts) should beat one (%d)", c4, c1)
	}
	c4Fast := conflicts(4, pfs.ParagonPFS(64))
	if c4Fast > 3 {
		t.Errorf("unsaturated PFS-64 with 4 files has %d conflicts, want ~0", c4Fast)
	}
	t.Logf("staging conflicts: PFS-16 1-file %d, 4-file %d; PFS-64 4-file %d", c1, c4, c4Fast)
	// Without the radar writer there is nothing to conflict with.
	quiet := DefaultOptions()
	res, err := Run(p, prof, pfs.ParagonPFS(16), quiet)
	if err != nil {
		t.Fatal(err)
	}
	if res.StagingConflicts != 0 {
		t.Errorf("no writer but %d conflicts", res.StagingConflicts)
	}
}
