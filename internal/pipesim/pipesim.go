// Package pipesim executes a core.Pipeline on a discrete-event simulation
// of the machine (internal/machine) and parallel file system
// (internal/pfs). Each task is a stage that serves CPIs in order; a stage's
// service consists of the paper's phases — waiting for the parallel read
// (first task only), receiving input, computing, sending — and the file
// system is a shared resource whose stripe servers queue requests, so the
// I/O bottleneck the paper observed emerges rather than being assumed.
//
// The simulator measures steady-state throughput (CPIs/second at the
// terminal task) and latency (head service start to terminal completion),
// plus a per-task phase breakdown matching the paper's tables.
package pipesim

import (
	"fmt"
	"sort"

	"stapio/internal/core"
	"stapio/internal/machine"
	"stapio/internal/pfs"
	"stapio/internal/sim"
)

// Options configures a simulation run.
type Options struct {
	// CPIs is the number of coherent processing intervals pushed through
	// the pipeline.
	CPIs int
	// Warmup is the number of leading CPIs excluded from steady-state
	// statistics (the pipeline fill). Must be >= 1 and < CPIs.
	Warmup int
	// PrefetchDepth is how many reads ahead an asynchronous-I/O task keeps
	// in flight (the paper's iread/iowait double buffering is depth 1).
	// Ignored on synchronous file systems. Values < 1 are treated as 1.
	// The real executor's pipexec.Config.ReadAhead is the same knob, so
	// model sweeps and wall-clock sweeps are directly comparable.
	PrefetchDepth int
	// BufferDepth bounds how far a producer may run ahead of each
	// consumer (double buffering = 2, the default). Without flow control
	// a fast head stage would queue unboundedly in front of the
	// bottleneck.
	BufferDepth int
	// ArrivalInterval, when positive, paces the head task: CPI k cannot
	// start before k*ArrivalInterval, modelling the radar's fixed CPI
	// cadence. Zero free-runs the pipeline (used to measure capacity).
	ArrivalInterval float64
	// RadarWriteBytes, when positive, adds the radar itself as a writer:
	// each time the pipeline starts a CPI, the radar writes the next
	// staging file (RadarWriteBytes) into the same stripe servers — the
	// paper's round-robin staggering, where the radar refills the file
	// slot the pipeline just vacated. The write load therefore tracks the
	// pipeline rate and contends with reads for the whole run.
	RadarWriteBytes float64
	// StagingFiles is the number of round-robin staging files shared by
	// the radar writer and the pipeline reader (the paper uses 4; values
	// < 1 default to 4). CPI k lives in slot k mod StagingFiles. With the
	// radar writer enabled, Result.StagingConflicts counts the intervals
	// during which a slot was being read and rewritten at the same time —
	// the data-inconsistency hazard the paper's round-robin staggering
	// minimises.
	StagingFiles int
	// Trace records a per-phase execution timeline into Result.Timeline
	// (report.Gantt renders it). Off by default: tracing a long run
	// allocates one span per task phase per CPI.
	Trace bool
	// Faults, when non-nil, injects the deterministic fault plan into the
	// simulated stripe servers: failed stripe requests are re-served
	// (priced as retries with backoff) and slow outcomes stretch the
	// service time. Only meaningful when the pipeline touches the file
	// system.
	Faults *pfs.FaultPlan
}

// Phase identifies one segment of a task's service in the timeline.
type Phase string

// Phases recorded by the tracer.
const (
	PhaseReadWait  Phase = "read-wait"
	PhaseRecv      Phase = "recv"
	PhaseCompute   Phase = "compute"
	PhaseSend      Phase = "send"
	PhaseWriteWait Phase = "write-wait"
)

// Span is one traced interval of a task's execution.
type Span struct {
	Task  string
	CPI   int
	Phase Phase
	Start float64
	End   float64
}

// DefaultOptions runs 60 CPIs with a 12-CPI warmup, prefetch depth 1, and
// double buffering.
func DefaultOptions() Options {
	return Options{CPIs: 60, Warmup: 12, PrefetchDepth: 1, BufferDepth: 2}
}

// TaskStats is the measured per-CPI phase breakdown of one task in steady
// state.
type TaskStats struct {
	Name  string
	Nodes int
	// ReadWait is the mean time the task spent blocked on the parallel
	// file system (the "receive phase" of the paper's first task).
	ReadWait float64
	// WriteWait is the mean time blocked on synchronous report writes
	// (zero for async file systems, where writes are fire-and-forget).
	WriteWait float64
	// Recv, Compute, Send are the mean phase durations.
	Recv, Compute, Send float64
	// InputWait is the mean time between the task becoming free and its
	// next CPI's inputs being available (idle upstream starvation).
	InputWait float64
	// Service is the mean end-to-end service time per CPI.
	Service float64
	// Served is the number of CPIs measured (after warmup).
	Served int
}

// Result is the outcome of a simulation run.
type Result struct {
	// Throughput is the steady-state CPI completion rate at the terminal
	// task, CPIs/second (the paper's eq. (1) measured).
	Throughput float64
	// Latency is the mean steady-state time from the head task starting a
	// CPI to the terminal task completing it (eq. (2) measured).
	Latency float64
	// LatencyP95 is the 95th-percentile steady-state latency.
	LatencyP95 float64
	// Tasks is the per-task phase breakdown.
	Tasks []TaskStats
	// Horizon is the virtual time at which the run completed.
	Horizon float64
	// FSBusiestUtilization is the utilization of the most-loaded stripe
	// server (0 when the pipeline does not read).
	FSBusiestUtilization float64
	// Events is the number of simulation events processed.
	Events int64
	// Timeline holds the traced spans when Options.Trace was set, in
	// completion order.
	Timeline []Span
	// StagingConflicts counts read/write overlaps on the same staging
	// file slot (only meaningful with the radar writer enabled).
	StagingConflicts int
	// FaultRetries is the number of stripe requests the file system model
	// re-served because of injected faults (zero without Options.Faults).
	FaultRetries int64
}

// Run simulates the pipeline and returns measured performance.
func Run(p *core.Pipeline, prof machine.Profile, fsCfg pfs.Config, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if opts.CPIs < 2 {
		return nil, fmt.Errorf("pipesim: need at least 2 CPIs, got %d", opts.CPIs)
	}
	if opts.Warmup < 1 || opts.Warmup >= opts.CPIs {
		return nil, fmt.Errorf("pipesim: warmup %d must be in [1, %d)", opts.Warmup, opts.CPIs)
	}
	if opts.PrefetchDepth < 1 {
		opts.PrefetchDepth = 1
	}
	if opts.BufferDepth < 1 {
		opts.BufferDepth = 1
	}
	if opts.StagingFiles < 1 {
		opts.StagingFiles = 4
	}
	if opts.ArrivalInterval < 0 {
		return nil, fmt.Errorf("pipesim: negative arrival interval %v", opts.ArrivalInterval)
	}

	if opts.RadarWriteBytes < 0 {
		return nil, fmt.Errorf("pipesim: negative radar writer volume %v", opts.RadarWriteBytes)
	}
	r := &runner{pipe: p, prof: prof, opts: opts}
	needsFS := opts.RadarWriteBytes > 0
	for _, t := range p.Tasks {
		if t.ReadBytes > 0 || t.WriteBytes > 0 {
			needsFS = true
		}
	}
	if needsFS {
		var err error
		r.fs, err = pfs.NewModel(&r.eng, fsCfg)
		if err != nil {
			return nil, err
		}
		r.fsCfg = fsCfg
		if opts.Faults != nil {
			if err := opts.Faults.Validate(); err != nil {
				return nil, err
			}
			r.fs.SetFaults(opts.Faults)
		}
	}
	r.build()
	r.eng.Run()
	return r.collect()
}

// Measure runs the two-phase measurement protocol the paper's set-up
// implies: first the pipeline free-runs to find its capacity (throughput =
// 1 / max T_i); then it re-runs with CPIs arriving at just under that
// capacity — the radar's real-time cadence — which keeps queues empty so
// the measured latency is the per-CPI processing time of the paper's
// eq. (2)/(4), not queueing delay. The returned Result carries the
// free-run throughput and the paced-run latency and task statistics.
func Measure(p *core.Pipeline, prof machine.Profile, fsCfg pfs.Config, opts Options) (*Result, error) {
	if opts.ArrivalInterval != 0 {
		return nil, fmt.Errorf("pipesim: Measure sets the arrival interval itself")
	}
	free, err := Run(p, prof, fsCfg, opts)
	if err != nil {
		return nil, err
	}
	paced := opts
	paced.ArrivalInterval = 1.001 / free.Throughput
	res, err := Run(p, prof, fsCfg, paced)
	if err != nil {
		return nil, err
	}
	res.Throughput = free.Throughput
	return res, nil
}

type token struct{ from, cpi int }

type runner struct {
	eng    sim.Engine
	pipe   *core.Pipeline
	prof   machine.Profile
	fs     *pfs.Model
	fsCfg  pfs.Config
	opts   Options
	stages []*stage

	headStart []float64 // head service start per CPI
	termDone  []float64 // terminal completion per CPI
	timeline  []Span

	// Staging-slot occupancy: a slot with simultaneous readers and a
	// writer (or two writers) is a consistency hazard.
	slotReaders  []int
	slotWriters  []int
	slotConflict int
}

// slotReadBegin marks the staging slot of CPI k as being read; it reports
// a conflict if the radar is rewriting it.
func (r *runner) slotReadBegin(k int) int {
	s := k % r.opts.StagingFiles
	if r.slotWriters[s] > 0 {
		r.slotConflict++
	}
	r.slotReaders[s]++
	return s
}

func (r *runner) slotReadEnd(s int) { r.slotReaders[s]-- }

// slotWriteBegin marks the slot of CPI k as being rewritten by the radar.
func (r *runner) slotWriteBegin(k int) int {
	s := k % r.opts.StagingFiles
	if r.slotReaders[s] > 0 || r.slotWriters[s] > 0 {
		r.slotConflict++
	}
	r.slotWriters[s]++
	return s
}

func (r *runner) slotWriteEnd(s int) { r.slotWriters[s]-- }

// span records a traced interval when tracing is enabled. Zero-length
// spans are dropped.
func (r *runner) span(task string, cpi int, phase Phase, start, end float64) {
	if !r.opts.Trace || end <= start {
		return
	}
	r.timeline = append(r.timeline, Span{Task: task, CPI: cpi, Phase: phase, Start: start, End: end})
}

type stage struct {
	r    *runner
	idx  int
	task core.Task

	recvTime    float64
	computeTime float64
	sendTime    float64

	tokens         map[token]bool
	next           int // next CPI to serve
	busy           bool
	freeAt         float64 // when the stage last became free
	started        float64 // service start of the in-flight CPI
	startedThrough int     // highest CPI whose service has started (-1 none)
	arrivalArmed   bool    // head only: a paced wake-up is scheduled

	// read bookkeeping (only for reading tasks)
	readDone   map[int]bool
	readIssued int // highest CPI whose read has been issued (-1 none)
	waitingOn  int // CPI whose read the stage is blocked on (-1 none)

	// stats (accumulated for CPIs >= warmup)
	statReadWait, statRecv, statCompute, statSend float64
	statWriteWait, statInputWait, statService     float64
	statServed                                    int
}

func (r *runner) build() {
	n := len(r.pipe.Tasks)
	r.stages = make([]*stage, n)
	r.headStart = make([]float64, r.opts.CPIs)
	r.termDone = make([]float64, r.opts.CPIs)
	r.slotReaders = make([]int, r.opts.StagingFiles)
	r.slotWriters = make([]int, r.opts.StagingFiles)
	for i, t := range r.pipe.Tasks {
		s := &stage{
			r: r, idx: i, task: t,
			tokens:         make(map[token]bool),
			computeTime:    r.prof.ComputeTime(t.Flops, t.Nodes) + r.prof.Overhead(t.Nodes, t.KernelCount()),
			readIssued:     -1,
			waitingOn:      -1,
			startedThrough: -1,
		}
		for _, d := range t.Deps {
			s.recvTime += r.prof.CommTime(d.Bytes, r.pipe.Tasks[d.From].Nodes, t.Nodes)
		}
		for _, c := range r.pipe.Consumers(i) {
			s.sendTime += r.prof.CommTime(c.Dep.Bytes, t.Nodes, r.pipe.Tasks[c.To].Nodes)
		}
		r.stages[i] = s
	}
	// Prime: async readers issue their prefetch window at t=0; all stages
	// try to start CPI 0.
	for _, s := range r.stages {
		if s.task.ReadBytes > 0 && r.fsCfg.Async {
			for k := 0; k < r.opts.PrefetchDepth && k < r.opts.CPIs; k++ {
				s.issueRead(k)
			}
		}
	}
	for _, s := range r.stages {
		s.tryStart()
	}
}

// ready reports whether all inputs of CPI k are available and no consumer
// buffer would overflow.
func (s *stage) ready(k int) bool {
	for _, d := range s.task.Deps {
		src := k - d.Lag
		if src < 0 {
			continue // before the first CPI: primed with initial data
		}
		if !s.tokens[token{from: d.From, cpi: src}] {
			return false
		}
	}
	// Flow control: this stage may be at most BufferDepth (+lag) CPIs
	// ahead of each consumer's service start.
	for _, c := range s.r.pipe.Consumers(s.idx) {
		limit := s.r.stages[c.To].startedThrough + s.r.opts.BufferDepth + c.Dep.Lag
		if k > limit {
			return false
		}
	}
	return true
}

// deliver records the arrival of the producer's output for CPI k and wakes
// the stage if it was input-starved.
func (s *stage) deliver(from, k int) {
	s.tokens[token{from: from, cpi: k}] = true
	s.tryStart()
}

// tryStart begins service of the next CPI if the stage is idle, inputs are
// ready, and (for the head) the CPI has arrived.
func (s *stage) tryStart() {
	if s.busy || s.next >= s.r.opts.CPIs || !s.ready(s.next) {
		return
	}
	k := s.next
	if s.idx == 0 && s.r.opts.ArrivalInterval > 0 {
		at := float64(k) * s.r.opts.ArrivalInterval
		if s.r.eng.Now() < at {
			if !s.arrivalArmed {
				s.arrivalArmed = true
				s.r.eng.ScheduleAt(at, func() {
					s.arrivalArmed = false
					s.tryStart()
				})
			}
			return
		}
	}
	s.busy = true
	s.started = s.r.eng.Now()
	s.startedThrough = k
	if s.idx == 0 {
		s.r.headStart[k] = s.started
		// The radar refills the staging-file slot the pipeline just moved
		// past — the paper's round-robin write/read staggering. The refill
		// targets slot k mod StagingFiles (the data for CPI k+files).
		if s.r.opts.RadarWriteBytes > 0 {
			slot := s.r.slotWriteBegin(k)
			s.r.fs.Write(0, int64(s.r.opts.RadarWriteBytes), func() {
				s.r.slotWriteEnd(slot)
			})
		}
	}
	// Starting a CPI frees one producer-side buffer slot.
	for _, d := range s.task.Deps {
		s.r.stages[d.From].tryStart()
	}
	if k >= s.r.opts.Warmup {
		s.statInputWait += s.started - s.freeAt
	}
	if s.task.ReadBytes > 0 {
		if s.r.fsCfg.Async {
			if s.readDone[k] {
				s.afterRead(k, 0)
			} else {
				s.waitingOn = k // resumed by onReadComplete
			}
		} else {
			// Synchronous file system: issue now and block.
			issue := s.r.eng.Now()
			s.issueReadWith(k, func() {
				s.afterRead(k, s.r.eng.Now()-issue)
			})
		}
		return
	}
	s.phases(k, 0)
}

// issueRead starts the asynchronous read for CPI k (at most once).
func (s *stage) issueRead(k int) {
	if k >= s.r.opts.CPIs || k <= s.readIssued {
		return
	}
	s.readIssued = k
	s.issueReadWith(k, func() { s.onReadComplete(k) })
}

func (s *stage) issueReadWith(k int, done func()) {
	if s.readDone == nil {
		s.readDone = make(map[int]bool)
	}
	slot := s.r.slotReadBegin(k)
	s.r.fs.Read(0, int64(s.task.ReadBytes), func() {
		s.r.slotReadEnd(slot)
		done()
	})
}

// onReadComplete handles an asynchronous read completion: unblock the
// stage if it was waiting on this CPI's data.
func (s *stage) onReadComplete(k int) {
	s.readDone[k] = true
	if s.waitingOn == k {
		s.waitingOn = -1
		s.afterRead(k, s.r.eng.Now()-s.started)
	}
}

// afterRead continues service once CPI k's data is in memory. Consuming
// buffer k frees it, so the next prefetch (k + depth) is issued here —
// the iread/iowait double-buffering discipline: at most PrefetchDepth
// reads beyond the one being consumed.
func (s *stage) afterRead(k int, readWait float64) {
	if k >= s.r.opts.Warmup {
		s.statReadWait += readWait
	}
	s.r.span(s.task.Name, k, PhaseReadWait, s.r.eng.Now()-readWait, s.r.eng.Now())
	delete(s.readDone, k)
	if s.r.fsCfg.Async {
		s.issueRead(k + s.r.opts.PrefetchDepth)
	}
	s.phases(k, readWait)
}

// phases runs the receive, compute, send, and (optional) write phases,
// then completes.
func (s *stage) phases(k int, readWait float64) {
	eng := &s.r.eng
	t0 := eng.Now()
	eng.Schedule(s.recvTime, func() {
		t1 := eng.Now()
		s.r.span(s.task.Name, k, PhaseRecv, t0, t1)
		eng.Schedule(s.computeTime, func() {
			t2 := eng.Now()
			s.r.span(s.task.Name, k, PhaseCompute, t1, t2)
			eng.Schedule(s.sendTime, func() {
				s.r.span(s.task.Name, k, PhaseSend, t2, eng.Now())
				s.write(k)
			})
		})
	})
}

// write persists the task's per-CPI output. On asynchronous file systems
// the write is fire-and-forget (it still loads the stripe servers); on
// synchronous ones the stage blocks until it lands.
func (s *stage) write(k int) {
	if s.task.WriteBytes <= 0 {
		s.complete(k)
		return
	}
	if s.r.fsCfg.Async {
		s.r.fs.Write(0, int64(s.task.WriteBytes), func() {})
		s.complete(k)
		return
	}
	issued := s.r.eng.Now()
	s.r.fs.Write(0, int64(s.task.WriteBytes), func() {
		if k >= s.r.opts.Warmup {
			s.statWriteWait += s.r.eng.Now() - issued
		}
		s.r.span(s.task.Name, k, PhaseWriteWait, issued, s.r.eng.Now())
		s.complete(k)
	})
}

// complete finishes CPI k: deposits output tokens, records statistics, and
// moves to the next CPI.
func (s *stage) complete(k int) {
	now := s.r.eng.Now()
	if k >= s.r.opts.Warmup {
		s.statRecv += s.recvTime
		s.statCompute += s.computeTime
		s.statSend += s.sendTime
		s.statService += now - s.started
		s.statServed++
	}
	if s.idx == len(s.r.stages)-1 {
		s.r.termDone[k] = now
	}
	for _, c := range s.r.pipe.Consumers(s.idx) {
		s.r.stages[c.To].deliver(s.idx, k)
	}
	s.busy = false
	s.freeAt = now
	s.next = k + 1
	s.tryStart()
}

func (r *runner) collect() (*Result, error) {
	n := r.opts.CPIs
	w := r.opts.Warmup
	last := r.termDone[n-1]
	if last <= 0 {
		return nil, fmt.Errorf("pipesim: pipeline did not complete all CPIs (deadlock?)")
	}
	res := &Result{Horizon: r.eng.Now(), Events: r.eng.Processed()}
	res.Throughput = float64(n-w) / (r.termDone[n-1] - r.termDone[w-1])
	lats := make([]float64, 0, n-w)
	var latSum float64
	for k := w; k < n; k++ {
		l := r.termDone[k] - r.headStart[k]
		latSum += l
		lats = append(lats, l)
	}
	res.Latency = latSum / float64(n-w)
	sort.Float64s(lats)
	res.LatencyP95 = lats[(len(lats)*95)/100]
	for _, s := range r.stages {
		served := s.statServed
		if served == 0 {
			served = 1
		}
		res.Tasks = append(res.Tasks, TaskStats{
			Name:      s.task.Name,
			Nodes:     s.task.Nodes,
			ReadWait:  s.statReadWait / float64(served),
			WriteWait: s.statWriteWait / float64(served),
			Recv:      s.statRecv / float64(served),
			Compute:   s.statCompute / float64(served),
			Send:      s.statSend / float64(served),
			InputWait: s.statInputWait / float64(served),
			Service:   s.statService / float64(served),
			Served:    s.statServed,
		})
	}
	if r.fs != nil {
		res.FSBusiestUtilization = r.fs.BusiestUtilization(res.Horizon)
		res.FaultRetries = r.fs.FaultRetries()
	}
	res.Timeline = r.timeline
	res.StagingConflicts = r.slotConflict
	return res, nil
}
