package pipesim

import (
	"testing"

	"stapio/internal/core"
	"stapio/internal/machine"
	"stapio/internal/pfs"
)

func TestFaultPlanSlowsSimulatedPipeline(t *testing.T) {
	// Injected stripe faults re-serve requests, so the simulated file
	// system delivers less and the I/O-bound configuration (case 3,
	// stripe 16) loses throughput.
	prof := machine.Paragon()
	fsCfg := pfs.ParagonPFS(16)
	opts := DefaultOptions()
	healthy := runEmbedded(t, fsCfg, prof, 4, opts)
	if healthy.FaultRetries != 0 {
		t.Errorf("healthy run reported %d fault retries", healthy.FaultRetries)
	}
	opts.Faults = &pfs.FaultPlan{Seed: 3, FailRate: 0.05, SlowRate: 0.05}
	faulty := runEmbedded(t, fsCfg, prof, 4, opts)
	if faulty.FaultRetries == 0 {
		t.Fatal("fault plan injected no retries")
	}
	if faulty.Throughput >= healthy.Throughput {
		t.Errorf("faults did not cost throughput: %.3f vs healthy %.3f",
			faulty.Throughput, healthy.Throughput)
	}
	// The plan is deterministic: a fresh plan with the same seed must
	// reproduce the run exactly.
	opts.Faults = &pfs.FaultPlan{Seed: 3, FailRate: 0.05, SlowRate: 0.05}
	again := runEmbedded(t, fsCfg, prof, 4, opts)
	if again.Throughput != faulty.Throughput || again.FaultRetries != faulty.FaultRetries ||
		again.Events != faulty.Events {
		t.Error("faulted simulation is not deterministic")
	}
}

func TestFaultPlanValidatedByRun(t *testing.T) {
	p, err := core.BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Faults = &pfs.FaultPlan{FailRate: 2}
	if _, err := Run(p, machine.Paragon(), pfs.ParagonPFS(16), opts); err == nil {
		t.Error("invalid fault plan should be rejected")
	}
}
