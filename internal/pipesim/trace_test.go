package pipesim

import (
	"sort"
	"testing"

	"stapio/internal/core"
	"stapio/internal/machine"
	"stapio/internal/pfs"
)

func TestTraceTimeline(t *testing.T) {
	prof := machine.Paragon()
	p, err := core.BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.CPIs = 10
	opts.Warmup = 2
	opts.Trace = true
	res, err := Run(p, prof, pfs.ParagonPFS(16), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("tracing produced no spans")
	}
	// Every span is well-formed and inside the horizon.
	perLane := map[string][]Span{}
	for _, s := range res.Timeline {
		if s.End <= s.Start {
			t.Fatalf("span %+v has non-positive duration", s)
		}
		if s.Start < 0 || s.End > res.Horizon+1e-9 {
			t.Fatalf("span %+v outside horizon %v", s, res.Horizon)
		}
		perLane[s.Task] = append(perLane[s.Task], s)
	}
	// All seven tasks appear.
	if len(perLane) != len(p.Tasks) {
		t.Errorf("timeline covers %d tasks, want %d", len(perLane), len(p.Tasks))
	}
	// Within each lane, spans do not overlap (a task serves one CPI at a
	// time and phases are sequential).
	for lane, spans := range perLane {
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		for i := 1; i < len(spans); i++ {
			if spans[i].Start < spans[i-1].End-1e-9 {
				t.Fatalf("lane %s: overlapping spans %+v and %+v", lane, spans[i-1], spans[i])
			}
		}
	}
	// Phase ordering within one (task, CPI): recv <= compute <= send.
	var recv, comp, send *Span
	for i, s := range res.Timeline {
		if s.Task == core.NameCFAR && s.CPI == 5 {
			switch s.Phase {
			case PhaseRecv:
				recv = &res.Timeline[i]
			case PhaseCompute:
				comp = &res.Timeline[i]
			case PhaseSend:
				send = &res.Timeline[i]
			}
		}
	}
	if recv == nil || comp == nil {
		t.Fatal("missing recv/compute spans for CFAR CPI 5")
	}
	if send != nil {
		t.Error("CFAR has no consumers; send span should be zero-length and dropped")
	}
	if comp.Start < recv.End-1e-12 {
		t.Errorf("compute starts %.6f before recv ends %.6f", comp.Start, recv.End)
	}
	// Tracing off by default: no spans.
	opts.Trace = false
	res2, err := Run(p, prof, pfs.ParagonPFS(16), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Timeline) != 0 {
		t.Error("timeline should be empty without Trace")
	}
}

func TestTraceShowsBottleneckReadWait(t *testing.T) {
	// At the bottlenecked configuration the Doppler lane must contain
	// read-wait spans.
	prof := machine.Paragon()
	p, err := core.BuildEmbedded(paperWorkloads(), case1Nodes().Scale(4))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.CPIs = 20
	opts.Warmup = 4
	opts.Trace = true
	res, err := Run(p, prof, pfs.ParagonPFS(16), opts)
	if err != nil {
		t.Fatal(err)
	}
	var readWait float64
	for _, s := range res.Timeline {
		if s.Task == core.NameDoppler && s.Phase == PhaseReadWait {
			readWait += s.End - s.Start
		}
	}
	if readWait <= 0 {
		t.Error("bottlenecked run shows no read-wait spans")
	}
}
