package pipesim

import (
	"math"
	"testing"

	"stapio/internal/core"
	"stapio/internal/cube"
	"stapio/internal/machine"
	"stapio/internal/pfs"
	"stapio/internal/stap"
)

func paperWorkloads() stap.Workloads {
	p := stap.DefaultParams(cube.Dims{Channels: 16, Pulses: 128, Ranges: 1024})
	return stap.ComputeWorkloads(&p)
}

func case1Nodes() core.STAPNodes {
	return core.STAPNodes{Doppler: 16, EasyWeight: 2, HardWeight: 3, EasyBF: 8, HardBF: 4, PulseComp: 14, CFAR: 3, IO: 8}
}

func runEmbedded(t *testing.T, fsCfg pfs.Config, prof machine.Profile, scale int, opts Options) *Result {
	t.Helper()
	p, err := core.BuildEmbedded(paperWorkloads(), case1Nodes().Scale(scale))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, prof, fsCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunMatchesAnalyticModel(t *testing.T) {
	// The DES and the closed-form equations must agree in steady state
	// when the file system is not the bottleneck.
	prof := machine.Paragon()
	fsCfg := pfs.ParagonPFS(64)
	p, err := core.BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(p, prof, fsCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, prof, fsCfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Throughput-a.Throughput) / a.Throughput; rel > 0.03 {
		t.Errorf("throughput: DES %.3f vs analytic %.3f (%.1f%% apart)",
			res.Throughput, a.Throughput, rel*100)
	}
	if rel := math.Abs(res.Latency-a.Latency) / a.Latency; rel > 0.05 {
		t.Errorf("latency: DES %.3f vs analytic %.3f (%.1f%% apart)",
			res.Latency, a.Latency, rel*100)
	}
	// Per-task service times match the analytic T_i for non-starved tasks.
	for i, ts := range res.Tasks {
		if ts.Served == 0 {
			t.Errorf("task %s served no measured CPIs", ts.Name)
			continue
		}
		// Measured service includes input starvation only via InputWait,
		// which is excluded from Service... Service >= analytic phases.
		want := a.Timings[i].Rest()
		got := ts.Recv + ts.Compute + ts.Send
		if math.Abs(got-want) > 0.02*want+1e-6 {
			t.Errorf("task %s phases %.4f vs analytic rest %.4f", ts.Name, got, want)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	prof := machine.Paragon()
	fsCfg := pfs.ParagonPFS(16)
	a := runEmbedded(t, fsCfg, prof, 1, DefaultOptions())
	b := runEmbedded(t, fsCfg, prof, 1, DefaultOptions())
	if a.Throughput != b.Throughput || a.Latency != b.Latency || a.Events != b.Events {
		t.Error("simulation is not deterministic")
	}
}

func TestIOBottleneckEmergesAtScale(t *testing.T) {
	// The paper's central observation (Table 1): with stripe factor 16 the
	// pipeline scales to 100 nodes but the read becomes the bottleneck at
	// 200; stripe factor 64 relieves it.
	prof := machine.Paragon()
	opts := DefaultOptions()
	var thr16, thr64 [3]float64
	for i, scale := range []int{1, 2, 4} {
		thr16[i] = runEmbedded(t, pfs.ParagonPFS(16), prof, scale, opts).Throughput
		thr64[i] = runEmbedded(t, pfs.ParagonPFS(64), prof, scale, opts).Throughput
	}
	// Cases 1 and 2: both file systems roughly equal.
	for i := 0; i < 2; i++ {
		if rel := math.Abs(thr16[i]-thr64[i]) / thr64[i]; rel > 0.05 {
			t.Errorf("case %d: PFS-16 %.2f vs PFS-64 %.2f should match", i+1, thr16[i], thr64[i])
		}
	}
	// Case 3: PFS-16 visibly degraded.
	if thr16[2] > 0.8*thr64[2] {
		t.Errorf("case 3: expected I/O bottleneck on PFS-16: %.2f vs %.2f", thr16[2], thr64[2])
	}
	// PFS-64 scales ~linearly (ratios > 1.8 per doubling).
	if thr64[1]/thr64[0] < 1.8 || thr64[2]/thr64[1] < 1.7 {
		t.Errorf("PFS-64 throughput not scaling: %v", thr64)
	}
	// The bottleneck shows up as read wait in the Doppler task's stats.
	res16 := runEmbedded(t, pfs.ParagonPFS(16), prof, 4, opts)
	res64 := runEmbedded(t, pfs.ParagonPFS(64), prof, 4, opts)
	if res16.Tasks[0].ReadWait <= res64.Tasks[0].ReadWait {
		t.Error("PFS-16 at 200 nodes should show a larger receive/read-wait phase")
	}
	if res16.FSBusiestUtilization < 0.9 {
		t.Errorf("bottlenecked FS utilization %.2f, want near 1", res16.FSBusiestUtilization)
	}
}

func TestLatencyBarelyAffectedByBottleneck(t *testing.T) {
	// Paper: "the latency is not significantly affected by the bottleneck
	// problem" — it grows by the exposed read, not by the queueing.
	prof := machine.Paragon()
	opts := DefaultOptions()
	lat16 := runEmbedded(t, pfs.ParagonPFS(16), prof, 4, opts).Latency
	lat64 := runEmbedded(t, pfs.ParagonPFS(64), prof, 4, opts).Latency
	if lat16 <= lat64 {
		t.Errorf("PFS-16 latency %.3f should exceed PFS-64 %.3f slightly", lat16, lat64)
	}
	if lat16 > 1.6*lat64 {
		t.Errorf("latency blowup %.2fx too large — latency should be only mildly affected", lat16/lat64)
	}
}

func TestSeparateIOTaskThroughputSameLatencyWorse(t *testing.T) {
	// Paper Section 5.2: the separate-I/O design has ~the same throughput
	// (the bottleneck task is unchanged) but strictly worse latency (one
	// more pipeline term).
	prof := machine.Paragon()
	fsCfg := pfs.ParagonPFS(64)
	w := paperWorkloads()
	opts := DefaultOptions()
	for _, scale := range []int{1, 2} {
		n := case1Nodes().Scale(scale)
		emb, err := core.BuildEmbedded(w, n)
		if err != nil {
			t.Fatal(err)
		}
		sep, err := core.BuildSeparate(w, n)
		if err != nil {
			t.Fatal(err)
		}
		re, err := Measure(emb, prof, fsCfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := Measure(sep, prof, fsCfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(re.Throughput-rs.Throughput) / re.Throughput; rel > 0.07 {
			t.Errorf("scale %d: throughputs %.2f vs %.2f differ by %.1f%%",
				scale, re.Throughput, rs.Throughput, rel*100)
		}
		if rs.Latency <= re.Latency {
			t.Errorf("scale %d: separate latency %.3f not worse than embedded %.3f",
				scale, rs.Latency, re.Latency)
		}
	}
}

func TestTaskCombiningImprovesLatencyNotThroughput(t *testing.T) {
	// Paper Section 6 measured: combining PC+CFAR improves latency in
	// every case without hurting throughput, and the improvement
	// percentage decreases with node count.
	prof := machine.Paragon()
	fsCfg := pfs.ParagonPFS(64)
	w := paperWorkloads()
	opts := DefaultOptions()
	prevImp := math.Inf(1)
	for _, scale := range []int{1, 2, 4} {
		n := case1Nodes().Scale(scale)
		p, err := core.BuildEmbedded(w, n)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.CombinePCCFAR(p)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := Run(p, prof, fsCfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := Run(m, prof, fsCfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if rm.Latency >= rp.Latency {
			t.Errorf("scale %d: merged latency %.3f >= %.3f", scale, rm.Latency, rp.Latency)
		}
		if rm.Throughput < rp.Throughput*0.99 {
			t.Errorf("scale %d: merged throughput %.2f dropped from %.2f",
				scale, rm.Throughput, rp.Throughput)
		}
		imp := (rp.Latency - rm.Latency) / rp.Latency
		if imp >= prevImp {
			t.Errorf("scale %d: improvement %.1f%% did not decrease (prev %.1f%%)",
				scale, imp*100, prevImp*100)
		}
		prevImp = imp
	}
}

func TestSyncIOHurtsThroughput(t *testing.T) {
	// PIOFS has no asynchronous reads; the same machine with an async
	// version of the same file system must beat it.
	prof := machine.SP()
	sync := pfs.PIOFS()
	async := sync
	async.Async = true
	async.Name = "PIOFS-async(hypothetical)"
	opts := DefaultOptions()
	rSync := runEmbedded(t, sync, prof, 2, opts)
	rAsync := runEmbedded(t, async, prof, 2, opts)
	if rSync.Throughput >= rAsync.Throughput {
		t.Errorf("sync I/O throughput %.2f should trail async %.2f",
			rSync.Throughput, rAsync.Throughput)
	}
}

func TestPrefetchDepthZeroReadOverlap(t *testing.T) {
	// Deeper prefetch can only help (or tie); depth is an ablation knob.
	prof := machine.Paragon()
	fsCfg := pfs.ParagonPFS(16)
	o1 := DefaultOptions()
	o1.PrefetchDepth = 1
	o3 := DefaultOptions()
	o3.PrefetchDepth = 3
	r1 := runEmbedded(t, fsCfg, prof, 4, o1)
	r3 := runEmbedded(t, fsCfg, prof, 4, o3)
	if r3.Throughput < r1.Throughput*0.999 {
		t.Errorf("deeper prefetch hurt throughput: %.3f vs %.3f", r3.Throughput, r1.Throughput)
	}
}

func TestRunOptionValidation(t *testing.T) {
	prof := machine.Paragon()
	p, err := core.BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, prof, pfs.ParagonPFS(16), Options{CPIs: 1, Warmup: 0}); err == nil {
		t.Error("expected error for too few CPIs")
	}
	if _, err := Run(p, prof, pfs.ParagonPFS(16), Options{CPIs: 10, Warmup: 10}); err == nil {
		t.Error("expected error for warmup >= CPIs")
	}
	if _, err := Run(p, prof, pfs.Config{}, DefaultOptions()); err == nil {
		t.Error("expected error for invalid FS config on reading pipeline")
	}
	bad := &core.Pipeline{Name: "bad"}
	if _, err := Run(bad, prof, pfs.Config{}, DefaultOptions()); err == nil {
		t.Error("expected error for invalid pipeline")
	}
	if _, err := Run(p, machine.Profile{Name: "x"}, pfs.ParagonPFS(16), DefaultOptions()); err == nil {
		t.Error("expected error for invalid profile")
	}
}

func TestNoFSPipelineRuns(t *testing.T) {
	// A pipeline without any I/O attachment runs without a file system.
	p := &core.Pipeline{Name: "pure", Tasks: []core.Task{
		{Name: "a", Nodes: 2, Flops: 1e8},
		{Name: "b", Nodes: 2, Flops: 1e8, Deps: []core.Dep{{From: 0, Bytes: 1e6}}},
	}}
	res, err := Run(p, machine.Paragon(), pfs.Config{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || res.Latency <= 0 {
		t.Error("expected positive results")
	}
	if res.FSBusiestUtilization != 0 {
		t.Error("no FS should report zero utilization")
	}
}

func TestMeasureMatchesAnalyticSeparateLatency(t *testing.T) {
	// Under radar-paced arrivals the separate-I/O latency must match the
	// paper's eq. (4) prediction — no queueing in front of the bottleneck.
	prof := machine.Paragon()
	fsCfg := pfs.ParagonPFS(64)
	sep, err := core.BuildSeparate(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(sep, prof, fsCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Measure(sep, prof, fsCfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Latency-a.Latency) / a.Latency; rel > 0.10 {
		t.Errorf("measured latency %.3f vs analytic %.3f (%.1f%% apart)",
			res.Latency, a.Latency, rel*100)
	}
}

func TestBackpressureBoundsFreeRunLatency(t *testing.T) {
	// Free-running, the fast read head may run at most BufferDepth CPIs
	// ahead of each successor; the measured latency must stay within a
	// small multiple of the paced latency instead of growing with the
	// run length.
	prof := machine.Paragon()
	fsCfg := pfs.ParagonPFS(64)
	sep, err := core.BuildSeparate(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	short := DefaultOptions()
	long := DefaultOptions()
	long.CPIs = 120
	rShort, err := Run(sep, prof, fsCfg, short)
	if err != nil {
		t.Fatal(err)
	}
	rLong, err := Run(sep, prof, fsCfg, long)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(rLong.Latency-rShort.Latency) / rShort.Latency; rel > 0.10 {
		t.Errorf("free-run latency grows with run length: %.3f -> %.3f", rShort.Latency, rLong.Latency)
	}
}

func TestArrivalPacingSetsThroughput(t *testing.T) {
	// With arrivals slower than capacity, throughput equals the arrival
	// rate.
	prof := machine.Paragon()
	fsCfg := pfs.ParagonPFS(64)
	p, err := core.BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.ArrivalInterval = 1.0 // far slower than the ~0.37 s period
	res, err := Run(p, prof, fsCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Throughput-1.0) > 0.01 {
		t.Errorf("paced throughput %.3f, want ~1.0", res.Throughput)
	}
}

func TestMeasureRejectsPresetArrival(t *testing.T) {
	prof := machine.Paragon()
	p, err := core.BuildEmbedded(paperWorkloads(), case1Nodes())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.ArrivalInterval = 0.5
	if _, err := Measure(p, prof, pfs.ParagonPFS(64), opts); err == nil {
		t.Error("Measure should reject a preset arrival interval")
	}
	opts.ArrivalInterval = -1
	if _, err := Run(p, prof, pfs.ParagonPFS(64), opts); err == nil {
		t.Error("Run should reject a negative arrival interval")
	}
}

func TestTemporalDependencyOffCriticalPath(t *testing.T) {
	// Slowing the weight tasks (lag-1 producers) within the period must
	// not change latency — the paper's temporal-dependency argument.
	prof := machine.Paragon()
	fsCfg := pfs.ParagonPFS(64)
	w := paperWorkloads()
	n := case1Nodes()
	base, err := core.BuildEmbedded(w, n)
	if err != nil {
		t.Fatal(err)
	}
	slow := base.Clone()
	slow.Tasks[1].Flops *= 1.5
	slow.Tasks[2].Flops *= 1.5
	opts := DefaultOptions()
	rBase, err := Run(base, prof, fsCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	rSlow, err := Run(slow, prof, fsCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(rSlow.Latency-rBase.Latency) / rBase.Latency; rel > 0.02 {
		t.Errorf("weight-task slowdown changed latency by %.1f%%", rel*100)
	}
}

func TestLatencyP95(t *testing.T) {
	prof := machine.Paragon()
	res := runEmbedded(t, pfs.ParagonPFS(64), prof, 1, DefaultOptions())
	if res.LatencyP95 < res.Latency {
		t.Errorf("P95 %.4f below mean %.4f", res.LatencyP95, res.Latency)
	}
	if res.LatencyP95 > 2*res.Latency {
		t.Errorf("P95 %.4f implausibly above mean %.4f in a deterministic pipeline", res.LatencyP95, res.Latency)
	}
}
