package stap

import (
	"math"
	"math/cmplx"
	"testing"

	"stapio/internal/cube"
	"stapio/internal/radar"
	"stapio/internal/signal"
)

func TestStaggerCountDefaults(t *testing.T) {
	p := DefaultParams(testDims())
	if p.StaggerCount() != DefaultStaggers {
		t.Errorf("zero Staggers should default to %d", DefaultStaggers)
	}
	p.Staggers = 3
	if p.StaggerCount() != 3 {
		t.Errorf("StaggerCount = %d, want 3", p.StaggerCount())
	}
	if p.Bins() != p.Dims.Pulses-2 {
		t.Errorf("Bins = %d, want P-K+1 = %d", p.Bins(), p.Dims.Pulses-2)
	}
	p.Staggers = -1
	if err := p.Validate(); err == nil {
		t.Error("negative staggers should fail validation")
	}
	p.Staggers = p.Dims.Pulses
	if err := p.Validate(); err == nil {
		t.Error("staggers >= pulses should fail validation")
	}
}

func TestThreeStaggerSteeringPhases(t *testing.T) {
	p := DefaultParams(testDims())
	p.Staggers = 3
	hard := p.HardBins()
	d := hard[0]
	c := p.Dims.Channels
	s := p.Steering(0.3, d)
	if len(s) != 3*c {
		t.Fatalf("steering len %d, want %d", len(s), 3*c)
	}
	rot := cmplx.Exp(complex(0, 2*math.Pi*p.BinDoppler(d)))
	for st := 1; st < 3; st++ {
		for i := 0; i < c; i++ {
			want := s[(st-1)*c+i] * rot
			if cmplx.Abs(s[st*c+i]-want) > 1e-12 {
				t.Fatalf("stagger %d element %d: phase progression broken", st, i)
			}
		}
	}
}

func TestThreeStaggerDopplerFilter(t *testing.T) {
	// An on-bin tone must produce stagger outputs related by e^{i 2 pi fd}
	// between consecutive staggers, for all three.
	p := DefaultParams(testDims())
	p.Staggers = 3
	p.Window = signal.WindowRect
	fd := p.BinDoppler(3)
	cb := toneCube(p.Dims, 0, fd)
	dc, err := DopplerFilter(&p, cb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dc.SnapLen != 3*p.Dims.Channels {
		t.Fatalf("SnapLen = %d, want %d", dc.SnapLen, 3*p.Dims.Channels)
	}
	rot := cmplx.Exp(complex(0, 2*math.Pi*fd))
	for st := 1; st < 3; st++ {
		prev := dc.At(3, st-1, 0, 7)
		curr := dc.At(3, st, 0, 7)
		if cmplx.Abs(curr-prev*rot) > 1e-6 {
			t.Errorf("stagger %d phase relation broken: %v vs %v", st, curr, prev*rot)
		}
	}
}

func TestThreeStaggerEndToEnd(t *testing.T) {
	// The full chain still detects targets with K=3.
	dims := cube.Dims{Channels: 4, Pulses: 18, Ranges: 64}
	s := &radar.Scenario{
		Dims:       dims,
		PulseLen:   8,
		Bandwidth:  0.8,
		NoisePower: 1,
		Targets:    []radar.Target{{Angle: 0, Doppler: 0.25, Range: 20, SNR: 12}},
		Seed:       5,
	}
	p := DefaultParams(dims)
	p.Staggers = 3
	p.PulseLen = s.PulseLen
	p.Bandwidth = s.Bandwidth
	pr, err := NewProcessor(p)
	if err != nil {
		t.Fatal(err)
	}
	var dets []Detection
	for seq := uint64(0); seq < 2; seq++ {
		cb, err := s.Generate(seq)
		if err != nil {
			t.Fatal(err)
		}
		dets, err = pr.Process(cb, seq)
		if err != nil {
			t.Fatal(err)
		}
	}
	dets = ClusterDetections(dets, 3)
	wantBin := p.BinForDoppler(0.25)
	found := false
	for _, d := range dets {
		if d.Beam == 1 && absInt(d.Bin-wantBin) <= 1 && absInt(d.Range-20) <= 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("3-stagger chain missed the target; %d detections", len(dets))
	}
}

func TestMoreStaggersImproveHardBinSuppression(t *testing.T) {
	// More staggers give the hard bins more adaptive DoF; against a rank-
	// limited clutter ridge the residual output power should not get
	// worse, and typically improves.
	s := radar.SmallTestScenario()
	s.Dims = cube.Dims{Channels: 4, Pulses: 34, Ranges: 96}
	s.Targets = nil
	s.Clutter = radar.Clutter{Patches: 16, CNR: 40, Beta: 1}
	cb, err := s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	suppression := func(k int) float64 {
		p := DefaultParams(s.Dims)
		p.Staggers = k
		p.TrainHard = 80
		dc, err := DopplerFilter(&p, cb, 0)
		if err != nil {
			t.Fatal(err)
		}
		hard := p.HardBins()
		ws, err := ComputeWeights(&p, dc, hard, true)
		if err != nil {
			t.Fatal(err)
		}
		gain, err := SINRImprovement(&p, dc, ws, hard)
		if err != nil {
			t.Fatal(err)
		}
		return gain
	}
	g2 := suppression(2)
	g3 := suppression(3)
	t.Logf("clutter suppression: K=2 %.1f dB, K=3 %.1f dB", g2, g3)
	if g3 < g2-1.5 {
		t.Errorf("3 staggers (%.1f dB) much worse than 2 (%.1f dB)", g3, g2)
	}
	if g2 < 3 {
		t.Errorf("2-stagger suppression %.1f dB implausibly low", g2)
	}
}

func TestWorkloadScalesWithStaggers(t *testing.T) {
	base := DefaultParams(cube.Dims{Channels: 8, Pulses: 64, Ranges: 256})
	w2 := ComputeWorkloads(&base)
	k3 := base
	k3.Staggers = 3
	w3 := ComputeWorkloads(&k3)
	// Doppler and hard-weight work must grow with staggers.
	if w3.Flops[0] <= w2.Flops[0] {
		t.Error("Doppler workload should grow with staggers")
	}
	if w3.Flops[2] <= w2.Flops[2] {
		t.Error("hard-weight workload should grow with staggers")
	}
	// Easy-side work is stagger-independent (up to the small change in
	// bin count).
	if math.Abs(w3.Flops[3]-w2.Flops[3]) > 0.1*w2.Flops[3] {
		t.Error("easy beamforming workload should be nearly unchanged")
	}
}
