package stap

import (
	"testing"

	"stapio/internal/cube"
)

// bandedTestCube builds a deterministic cube with non-trivial structure
// across all three axes.
func bandedTestCube(d cube.Dims) *cube.Cube {
	cb := cube.New(d)
	for i := range cb.Data {
		c, p, r := d.Coords(i)
		cb.Data[i] = complex64(complex(float32(c+1)*0.25+float32(r)*0.01, float32(p)*0.125-float32(r)*0.005))
	}
	return cb
}

func bandedTestParams(t *testing.T) *Params {
	t.Helper()
	p := DefaultParams(cube.Dims{Channels: 4, Pulses: 16, Ranges: 53})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return &p
}

// bandSizes exercises the edge geometries: single-gate bands, a size that
// does not divide the range extent, and the degenerate full-extent band.
func bandSizes(ranges int) []int {
	return []int{1, 7, 16, ranges - 1, ranges}
}

// TestDopplerFilterBandMatchesFull pins the banded contract for the
// Doppler kernel: filtering band slabs reproduces the full-cube filter
// bit for bit.
func TestDopplerFilterBandMatchesFull(t *testing.T) {
	p := bandedTestParams(t)
	cb := bandedTestCube(p.Dims)
	want, err := DopplerFilter(p, cb, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, band := range bandSizes(p.Dims.Ranges) {
		slab := cube.New(cube.Dims{Channels: p.Dims.Channels, Pulses: p.Dims.Pulses, Ranges: band})
		sc := NewDopplerScratch(p)
		for lo := 0; lo < p.Dims.Ranges; lo += band {
			hi := lo + band
			if hi > p.Dims.Ranges {
				hi = p.Dims.Ranges
			}
			bslab := slab
			if hi-lo != band {
				bslab = cube.New(cube.Dims{Channels: p.Dims.Channels, Pulses: p.Dims.Pulses, Ranges: hi - lo})
			}
			if err := CopyBand(bslab, cb, lo); err != nil {
				t.Fatal(err)
			}
			out := NewDopplerCubeBand(p, hi-lo)
			if err := DopplerFilterBand(p, bslab, cube.Block{Lo: 0, Hi: hi - lo}, out, sc); err != nil {
				t.Fatal(err)
			}
			for d := 0; d < want.Bins; d++ {
				for r := lo; r < hi; r++ {
					ws, gs := want.Snapshot(d, r), out.Snapshot(d, r-lo)
					for k := range ws {
						if ws[k] != gs[k] {
							t.Fatalf("band %d: snapshot (%d,%d)[%d] = %v, want %v", band, d, r, k, gs[k], ws[k])
						}
					}
				}
			}
		}
	}
}

// TestCovAccumulatorMatchesEstimate pins the banded covariance contract:
// accumulating band slabs in ascending range order reproduces
// EstimateCovariances bit for bit, for both bin sets.
func TestCovAccumulatorMatchesEstimate(t *testing.T) {
	p := bandedTestParams(t)
	cb := bandedTestCube(p.Dims)
	dc, err := DopplerFilter(p, cb, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, hard := range []bool{false, true} {
		bins := p.EasyBins()
		if hard {
			bins = p.HardBins()
		}
		want, err := EstimateCovariances(p, dc, bins, hard)
		if err != nil {
			t.Fatal(err)
		}
		for _, band := range bandSizes(p.Dims.Ranges) {
			acc, err := NewCovAccumulator(p, bins, hard)
			if err != nil {
				t.Fatal(err)
			}
			for lo := 0; lo < p.Dims.Ranges; lo += band {
				hi := lo + band
				if hi > p.Dims.Ranges {
					hi = p.Dims.Ranges
				}
				out := NewDopplerCubeBand(p, hi-lo)
				slab := cube.New(cube.Dims{Channels: p.Dims.Channels, Pulses: p.Dims.Pulses, Ranges: hi - lo})
				if err := CopyBand(slab, cb, lo); err != nil {
					t.Fatal(err)
				}
				if err := DopplerFilterBand(p, slab, cube.Block{Lo: 0, Hi: hi - lo}, out, nil); err != nil {
					t.Fatal(err)
				}
				// Split the bin set into two blocks to exercise the
				// concurrent-bin-block path of the API.
				mid := len(bins) / 2
				if err := acc.AddBand(out, lo, cube.Block{Lo: 0, Hi: mid}); err != nil {
					t.Fatal(err)
				}
				if err := acc.AddBand(out, lo, cube.Block{Lo: mid, Hi: len(bins)}); err != nil {
					t.Fatal(err)
				}
			}
			got, err := acc.Finish()
			if err != nil {
				t.Fatalf("band %d hard=%v: %v", band, hard, err)
			}
			for i := range want {
				for j := range want[i].Data {
					if want[i].Data[j] != got[i].Data[j] {
						t.Fatalf("band %d hard=%v: cov[%d].Data[%d] = %v, want %v",
							band, hard, i, j, got[i].Data[j], want[i].Data[j])
					}
				}
			}
		}
	}
}

// TestCovAccumulatorDetectsMissingBand pins Finish's coverage check.
func TestCovAccumulatorDetectsMissingBand(t *testing.T) {
	p := bandedTestParams(t)
	acc, err := NewCovAccumulator(p, p.EasyBins(), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Finish(); err == nil {
		t.Fatal("Finish with no bands fed should fail")
	}
}

// TestBeamformBandMatchesFull pins the banded beamforming contract.
func TestBeamformBandMatchesFull(t *testing.T) {
	p := bandedTestParams(t)
	cb := bandedTestCube(p.Dims)
	dc, err := DopplerFilter(p, cb, 0)
	if err != nil {
		t.Fatal(err)
	}
	easy, hard := p.EasyBins(), p.HardBins()
	we, wh := InitialWeights(p, easy), InitialWeights(p, hard)
	want := NewBeamCube(p)
	if err := Beamform(p, dc, we, easy, want); err != nil {
		t.Fatal(err)
	}
	if err := Beamform(p, dc, wh, hard, want); err != nil {
		t.Fatal(err)
	}
	for _, band := range bandSizes(p.Dims.Ranges) {
		got := NewBeamCube(p)
		for lo := 0; lo < p.Dims.Ranges; lo += band {
			hi := lo + band
			if hi > p.Dims.Ranges {
				hi = p.Dims.Ranges
			}
			out := NewDopplerCubeBand(p, hi-lo)
			slab := cube.New(cube.Dims{Channels: p.Dims.Channels, Pulses: p.Dims.Pulses, Ranges: hi - lo})
			if err := CopyBand(slab, cb, lo); err != nil {
				t.Fatal(err)
			}
			if err := DopplerFilterBand(p, slab, cube.Block{Lo: 0, Hi: hi - lo}, out, nil); err != nil {
				t.Fatal(err)
			}
			if err := BeamformBand(p, out, we, easy, lo, got); err != nil {
				t.Fatal(err)
			}
			if err := BeamformBand(p, out, wh, hard, lo, got); err != nil {
				t.Fatal(err)
			}
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("band %d: beam data[%d] = %v, want %v", band, i, got.Data[i], want.Data[i])
			}
		}
	}
}
