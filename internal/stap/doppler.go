package stap

import (
	"fmt"

	"stapio/internal/cube"
	"stapio/internal/signal"
)

// DopplerCube holds the output of Doppler filter processing: for each
// Doppler bin and range gate, the stacked space-time snapshot
// [stagger0 ch0..chC-1, stagger1 ch0..chC-1, ...]. Snapshots are
// contiguous in memory — layout is Data[((bin*Ranges)+r)*SnapLen + k] — so
// beamforming and covariance estimation stream over them without
// gathering.
type DopplerCube struct {
	Bins, Ranges, Channels int
	// SnapLen = StaggerCount*Channels, the full snapshot length (hard-bin
	// DoF; easy bins use the first Channels entries).
	SnapLen int
	Data    []complex128
	// Seq is the CPI sequence number the cube was filtered from.
	Seq uint64
}

// NewDopplerCube allocates a zeroed Doppler cube for the given parameters.
func NewDopplerCube(p *Params) *DopplerCube {
	bins := p.Bins()
	sl := p.StaggerCount() * p.Dims.Channels
	return &DopplerCube{
		Bins:     bins,
		Ranges:   p.Dims.Ranges,
		Channels: p.Dims.Channels,
		SnapLen:  sl,
		Data:     make([]complex128, bins*p.Dims.Ranges*sl),
	}
}

// Snapshot returns the space-time snapshot at (bin, range) as a slice
// aliasing the cube storage (length SnapLen).
func (dc *DopplerCube) Snapshot(bin, r int) []complex128 {
	off := ((bin * dc.Ranges) + r) * dc.SnapLen
	return dc.Data[off : off+dc.SnapLen]
}

// At returns the Doppler output for (bin, stagger, channel, range).
func (dc *DopplerCube) At(bin, stagger, ch, r int) complex128 {
	return dc.Snapshot(bin, r)[stagger*dc.Channels+ch]
}

// DopplerScratch is the reusable per-worker state of Doppler filter
// processing: the window coefficients, the length-L FFT plan, the K stagger
// buffers, and the slow-time column buffer. Build one per Doppler worker
// with NewDopplerScratch (once per stage, not once per CPI) and pass it to
// DopplerFilterRanges; steady-state filtering then allocates nothing. A
// scratch must not be shared by two goroutines at once.
type DopplerScratch struct {
	win  []float64
	plan *signal.Plan
	bufs [][]complex128
	col  []complex64
}

// NewDopplerScratch builds the reusable filtering state for p.
func NewDopplerScratch(p *Params) *DopplerScratch {
	l := p.Bins()
	k := p.StaggerCount()
	sc := &DopplerScratch{
		win:  signal.Window(p.Window, l),
		plan: signal.PlanFor(l),
		bufs: make([][]complex128, k),
		col:  make([]complex64, p.Dims.Pulses),
	}
	for st := range sc.bufs {
		sc.bufs[st] = make([]complex128, l)
	}
	return sc
}

// fits reports whether the scratch was built for p's geometry.
func (sc *DopplerScratch) fits(p *Params) bool {
	return sc.plan.Len() == p.Bins() &&
		len(sc.bufs) == p.StaggerCount() &&
		len(sc.col) == p.Dims.Pulses
}

// DopplerFilter runs Doppler filter processing over the full cube. It is
// equivalent to DopplerFilterRanges over the whole range extent.
func DopplerFilter(p *Params, cb *cube.Cube, seq uint64) (*DopplerCube, error) {
	out := NewDopplerCube(p)
	out.Seq = seq
	if err := DopplerFilterRanges(p, cb, cube.Block{Lo: 0, Hi: p.Dims.Ranges}, out, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// DopplerFilterRanges performs Doppler filtering for the range gates in
// block rb only, writing into out. Distinct range blocks touch disjoint
// regions of out, so the pipeline's Doppler task workers each process one
// block concurrently. The input cube must match p.Dims. sc is the worker's
// reusable scratch; nil allocates a fresh one for the call (convenient for
// one-shot use, but the hot path should reuse a per-worker scratch).
func DopplerFilterRanges(p *Params, cb *cube.Cube, rb cube.Block, out *DopplerCube, sc *DopplerScratch) error {
	if cb.Dims != p.Dims {
		return fmt.Errorf("stap: cube dims %v do not match params dims %v", cb.Dims, p.Dims)
	}
	if rb.Lo < 0 || rb.Hi > p.Dims.Ranges || rb.Lo > rb.Hi {
		return fmt.Errorf("stap: range block %v outside [0,%d]", rb, p.Dims.Ranges)
	}
	l := p.Bins()
	k := p.StaggerCount()
	if out.SnapLen != k*p.Dims.Channels || out.Bins != l || out.Ranges != p.Dims.Ranges {
		return fmt.Errorf("stap: output cube geometry does not match params")
	}
	if sc == nil {
		sc = NewDopplerScratch(p)
	} else if !sc.fits(p) {
		return fmt.Errorf("stap: doppler scratch geometry does not match params")
	}
	w, bufs, col := sc.win, sc.bufs, sc.col
	for c := 0; c < p.Dims.Channels; c++ {
		for r := rb.Lo; r < rb.Hi; r++ {
			cb.PulseColumn(c, r, col)
			for st := 0; st < k; st++ {
				buf := bufs[st]
				for i := 0; i < l; i++ {
					buf[i] = complex128(col[i+st]) * complex(w[i], 0)
				}
			}
			sc.plan.ForwardMany(bufs)
			for d := 0; d < l; d++ {
				snap := out.Snapshot(d, r)
				for st := 0; st < k; st++ {
					snap[st*p.Dims.Channels+c] = bufs[st][d]
				}
			}
		}
	}
	return nil
}
