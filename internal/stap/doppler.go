package stap

import (
	"fmt"

	"stapio/internal/cube"
	"stapio/internal/signal"
)

// DopplerCube holds the output of Doppler filter processing: for each
// Doppler bin and range gate, the stacked space-time snapshot
// [stagger0 ch0..chC-1, stagger1 ch0..chC-1, ...]. Snapshots are
// contiguous in memory — layout is Data[((bin*Ranges)+r)*SnapLen + k] — so
// beamforming and covariance estimation stream over them without
// gathering.
type DopplerCube struct {
	Bins, Ranges, Channels int
	// SnapLen = StaggerCount*Channels, the full snapshot length (hard-bin
	// DoF; easy bins use the first Channels entries).
	SnapLen int
	Data    []complex128
	// Seq is the CPI sequence number the cube was filtered from.
	Seq uint64
}

// NewDopplerCube allocates a zeroed Doppler cube for the given parameters.
func NewDopplerCube(p *Params) *DopplerCube {
	bins := p.Bins()
	sl := p.StaggerCount() * p.Dims.Channels
	return &DopplerCube{
		Bins:     bins,
		Ranges:   p.Dims.Ranges,
		Channels: p.Dims.Channels,
		SnapLen:  sl,
		Data:     make([]complex128, bins*p.Dims.Ranges*sl),
	}
}

// Snapshot returns the space-time snapshot at (bin, range) as a slice
// aliasing the cube storage (length SnapLen).
func (dc *DopplerCube) Snapshot(bin, r int) []complex128 {
	off := ((bin * dc.Ranges) + r) * dc.SnapLen
	return dc.Data[off : off+dc.SnapLen]
}

// At returns the Doppler output for (bin, stagger, channel, range).
func (dc *DopplerCube) At(bin, stagger, ch, r int) complex128 {
	return dc.Snapshot(bin, r)[stagger*dc.Channels+ch]
}

// dopplerTileBudget bounds the per-worker output staging tile (in bytes):
// the tile buffers the bin-major rows of a few range gates so they land in
// the Doppler cube as one contiguous copy per bin. The budget only sets
// the tile depth; results are identical for any value.
const dopplerTileBudget = 128 << 10

// dopplerTileRanges returns the staging-tile depth for p's geometry: as
// many range gates as fit the budget, clamped to [1, 8].
func dopplerTileRanges(p *Params) int {
	rowBytes := p.Bins() * p.StaggerCount() * p.Dims.Channels * 16
	rt := dopplerTileBudget / rowBytes
	return max(1, min(rt, 8))
}

// DopplerScratch is the reusable per-worker state of Doppler filter
// processing: the window coefficients, the length-L FFT plan, the
// per-(stagger, channel) FFT buffers with their column views, and the
// bin-major staging tile. Build one per Doppler worker with
// NewDopplerScratch (once per stage, not once per CPI) and pass it to
// DopplerFilterRanges; steady-state filtering then allocates nothing. A
// scratch must not be shared by two goroutines at once.
type DopplerScratch struct {
	win  []float64
	plan *signal.Plan
	// cols[c] is the slow-time column buffer of channel c; srcs are the
	// K*C staggered views cols[c][st:st+L] in snapshot order (st*C+c),
	// built once so the batched windowed transform needs no per-call
	// slicing.
	cols [][]complex64
	srcs [][]complex64
	// bufs[st*C+c] receives the Doppler spectrum of (stagger st, channel
	// c) for the range gate in flight — snapshot order, so assembling one
	// (bin, range) snapshot reads the buffers in index order.
	bufs [][]complex128
	// tile stages rt range gates of output in bin-major order:
	// tile[(d*rt+ri)*SnapLen+k]. Flushing copies one contiguous run per
	// bin into the Doppler cube instead of scattering per range gate.
	tile []complex128
	rt   int
}

// NewDopplerScratch builds the reusable filtering state for p.
func NewDopplerScratch(p *Params) *DopplerScratch {
	l := p.Bins()
	k := p.StaggerCount()
	c := p.Dims.Channels
	sc := &DopplerScratch{
		win:  signal.Window(p.Window, l),
		plan: signal.PlanFor(l),
		cols: make([][]complex64, c),
		srcs: make([][]complex64, k*c),
		bufs: make([][]complex128, k*c),
		rt:   dopplerTileRanges(p),
	}
	for ch := range sc.cols {
		sc.cols[ch] = make([]complex64, p.Dims.Pulses)
	}
	for st := 0; st < k; st++ {
		for ch := 0; ch < c; ch++ {
			sc.srcs[st*c+ch] = sc.cols[ch][st : st+l]
			sc.bufs[st*c+ch] = make([]complex128, l)
		}
	}
	sc.tile = make([]complex128, l*sc.rt*k*c)
	return sc
}

// fits reports whether the scratch was built for p's geometry.
func (sc *DopplerScratch) fits(p *Params) bool {
	return sc.plan.Len() == p.Bins() &&
		len(sc.bufs) == p.StaggerCount()*p.Dims.Channels &&
		len(sc.cols) == p.Dims.Channels &&
		len(sc.cols[0]) == p.Dims.Pulses &&
		sc.rt == dopplerTileRanges(p)
}

// DopplerFilter runs Doppler filter processing over the full cube. It is
// equivalent to DopplerFilterRanges over the whole range extent.
func DopplerFilter(p *Params, cb *cube.Cube, seq uint64) (*DopplerCube, error) {
	out := NewDopplerCube(p)
	out.Seq = seq
	if err := DopplerFilterRanges(p, cb, cube.Block{Lo: 0, Hi: p.Dims.Ranges}, out, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// DopplerFilterRanges performs Doppler filtering for the range gates in
// block rb only, writing into out. Distinct range blocks touch disjoint
// regions of out, so the pipeline's Doppler task workers each process one
// block concurrently. The input cube must match p.Dims. sc is the worker's
// reusable scratch; nil allocates a fresh one for the call (convenient for
// one-shot use, but the hot path should reuse a per-worker scratch).
func DopplerFilterRanges(p *Params, cb *cube.Cube, rb cube.Block, out *DopplerCube, sc *DopplerScratch) error {
	if cb.Dims != p.Dims {
		return fmt.Errorf("stap: cube dims %v do not match params dims %v", cb.Dims, p.Dims)
	}
	if rb.Lo < 0 || rb.Hi > p.Dims.Ranges || rb.Lo > rb.Hi {
		return fmt.Errorf("stap: range block %v outside [0,%d]", rb, p.Dims.Ranges)
	}
	l := p.Bins()
	k := p.StaggerCount()
	if out.SnapLen != k*p.Dims.Channels || out.Bins != l || out.Ranges != p.Dims.Ranges {
		return fmt.Errorf("stap: output cube geometry does not match params")
	}
	if sc == nil {
		sc = NewDopplerScratch(p)
	} else if !sc.fits(p) {
		return fmt.Errorf("stap: doppler scratch geometry does not match params")
	}
	dopplerBody(p, cb, rb, out, sc)
	return nil
}

// dopplerBody is the shared kernel of DopplerFilterRanges and
// DopplerFilterBand: range gates are processed in staging tiles of sc.rt
// gates. For each gate, all channels' slow-time columns are read once and
// the K*C windowed transforms run as one batched call (the window multiply
// fused into the bit-reversal copy); the resulting snapshots are staged
// bin-major in the tile and flushed to the output cube as one contiguous
// copy per bin — blocked tiles instead of scattering one element per
// (bin, stagger) across the whole cube per column. Only the write order
// differs from the element-at-a-time form, so the output is bit-identical
// for any tile depth. Cube and output range indices coincide (both are
// band-local in the banded case).
func dopplerBody(p *Params, cb *cube.Cube, rb cube.Block, out *DopplerCube, sc *DopplerScratch) {
	l := p.Bins()
	c := p.Dims.Channels
	sl := out.SnapLen
	rt := sc.rt
	for r0 := rb.Lo; r0 < rb.Hi; r0 += rt {
		n := min(rt, rb.Hi-r0)
		for ri := 0; ri < n; ri++ {
			for ch := 0; ch < c; ch++ {
				cb.PulseColumn(ch, r0+ri, sc.cols[ch])
			}
			sc.plan.ForwardWindowedMany(sc.srcs, sc.win, sc.bufs)
			for d := 0; d < l; d++ {
				row := sc.tile[(d*rt+ri)*sl : (d*rt+ri+1)*sl]
				for k, buf := range sc.bufs {
					row[k] = buf[d]
				}
			}
		}
		for d := 0; d < l; d++ {
			src := sc.tile[d*rt*sl : (d*rt+n)*sl]
			dst := out.Data[(d*out.Ranges+r0)*sl:]
			copy(dst[:len(src)], src)
		}
	}
}
