package stap

import (
	"fmt"
	"math"

	"stapio/internal/linalg"
	"stapio/internal/signal"
)

// Diagnostics: standard STAP analysis quantities used by tests, examples,
// and anyone evaluating the adaptive weights — average residual output
// power, SINR improvement over the conventional beamformer, and the
// angle-Doppler power map.

// MeanOutputPower returns the average beamformer output power
// E|w^H x|^2 over all range gates and beams for the listed Doppler bins —
// the residual interference-plus-noise floor after adaptation.
func MeanOutputPower(p *Params, dc *DopplerCube, ws *WeightSet, bins []int) (float64, error) {
	var sum float64
	var n int
	for _, d := range bins {
		perBeam := ws.For(d)
		if perBeam == nil {
			return 0, fmt.Errorf("stap: weight set does not cover bin %d", d)
		}
		dof := p.DoF(d)
		for b := range p.Beams {
			w := perBeam[b]
			if len(w) != dof {
				return 0, fmt.Errorf("stap: bin %d beam %d weight length %d, want %d", d, b, len(w), dof)
			}
			for r := 0; r < dc.Ranges; r++ {
				y := linalg.Dot(w, dc.Snapshot(d, r)[:dof])
				sum += real(y)*real(y) + imag(y)*imag(y)
				n++
			}
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("stap: no bins to evaluate")
	}
	return sum / float64(n), nil
}

// SINRImprovement returns the interference-suppression gain of the
// adaptive weights over the conventional (steering-vector) beamformer in
// dB, measured as the ratio of mean output powers on the same data. Both
// weight sets are distortionless toward the steering directions, so lower
// output power means higher SINR.
func SINRImprovement(p *Params, dc *DopplerCube, adaptive *WeightSet, bins []int) (float64, error) {
	conventional := InitialWeights(p, bins)
	pa, err := MeanOutputPower(p, dc, adaptive, bins)
	if err != nil {
		return 0, err
	}
	pc, err := MeanOutputPower(p, dc, conventional, bins)
	if err != nil {
		return 0, err
	}
	if pa <= 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(pc/pa), nil
}

// AngleDopplerMap is the conventional beamformer power over a grid of
// angles (rows) by Doppler bins (columns) at one range gate — the classic
// STAP diagnostic in which the clutter ridge appears as a diagonal, a
// jammer as a vertical stripe, and a target as a point.
type AngleDopplerMap struct {
	// Angles holds the normalised angle grid (rows).
	Angles []float64
	// Bins holds the Doppler bin indices (columns).
	Bins []int
	// Power[i][j] is the output power at (Angles[i], Bins[j]).
	Power [][]float64
}

// ComputeAngleDopplerMap evaluates the map at range gate r using nAngles
// uniformly spaced angles in [-1, 1] and the first-stagger snapshots.
func ComputeAngleDopplerMap(p *Params, dc *DopplerCube, r, nAngles int) (*AngleDopplerMap, error) {
	if r < 0 || r >= dc.Ranges {
		return nil, fmt.Errorf("stap: range gate %d outside [0,%d)", r, dc.Ranges)
	}
	if nAngles < 2 {
		return nil, fmt.Errorf("stap: need at least 2 angles, got %d", nAngles)
	}
	m := &AngleDopplerMap{}
	for i := 0; i < nAngles; i++ {
		m.Angles = append(m.Angles, -1+2*float64(i)/float64(nAngles-1))
	}
	for d := 0; d < dc.Bins; d++ {
		m.Bins = append(m.Bins, d)
	}
	c := p.Dims.Channels
	norm := 1 / float64(c)
	m.Power = make([][]float64, nAngles)
	for i, u := range m.Angles {
		sv := signal.SteeringVector(c, u)
		row := make([]float64, len(m.Bins))
		for j, d := range m.Bins {
			snap := dc.Snapshot(d, r)[:c]
			y := linalg.Dot(sv, snap)
			y *= complex(norm, 0)
			row[j] = real(y)*real(y) + imag(y)*imag(y)
		}
		m.Power[i] = row
	}
	return m, nil
}

// Centre reorders the map's columns into centred Doppler order — the
// zero-Doppler column moves to the middle, negative Doppler to the left —
// the conventional display order for angle-Doppler maps. It rotates the
// bin labels and every power row with signal.FFTShiftInto through one
// reused scratch row; calling it twice keeps rotating, so centre once
// after computing the map.
func (m *AngleDopplerMap) Centre() {
	n := len(m.Bins)
	if n == 0 {
		return
	}
	bins := make([]int, n)
	signal.FFTShiftInto(m.Bins, bins)
	copy(m.Bins, bins)
	row := make([]float64, n)
	for _, p := range m.Power {
		signal.FFTShiftInto(p, row)
		copy(p, row)
	}
}

// Peak returns the (angle, bin) cell with the highest power.
func (m *AngleDopplerMap) Peak() (angle float64, bin int, power float64) {
	best := -1.0
	for i, row := range m.Power {
		for j, v := range row {
			if v > best {
				best = v
				angle = m.Angles[i]
				bin = m.Bins[j]
			}
		}
	}
	return angle, bin, best
}
