package stap_test

import (
	"fmt"

	"stapio/internal/radar"
	"stapio/internal/stap"
)

// The full STAP chain on a synthetic scene: two CPIs prime the adaptive
// weights, the second CPI's detections land on the injected targets.
func ExampleProcessor() {
	scenario := radar.SmallTestScenario()
	params := stap.DefaultParams(scenario.Dims)
	params.PulseLen = scenario.PulseLen
	params.Bandwidth = scenario.Bandwidth

	pr, err := stap.NewProcessor(params)
	if err != nil {
		fmt.Println(err)
		return
	}
	var dets []stap.Detection
	for seq := uint64(0); seq < 2; seq++ {
		cb, err := scenario.Generate(seq)
		if err != nil {
			fmt.Println(err)
			return
		}
		if dets, err = pr.Process(cb, seq); err != nil {
			fmt.Println(err)
			return
		}
	}
	for _, tg := range scenario.Targets {
		bin := params.BinForDoppler(tg.Doppler)
		hit := false
		for _, d := range stap.ClusterDetections(dets, 3) {
			if d.Bin >= bin-1 && d.Bin <= bin+1 && d.Range >= tg.Range-2 && d.Range <= tg.Range+2 {
				hit = true
			}
		}
		fmt.Printf("target at doppler-bin %d, gate %d detected: %v\n", bin, tg.Range, hit)
	}
	// Output:
	// target at doppler-bin 4, gate 20 detected: true
	// target at doppler-bin 11, gate 40 detected: true
}
