package stap

import "math"

// Workloads summarises the computational cost (floating-point operations)
// of each STAP task and the data volumes (bytes) flowing between tasks for
// one CPI. The discrete-event performance simulator converts these into
// task execution times via a machine profile; the counts follow the
// operation structure of the kernels in this package.
//
// Task indices follow the pipeline order: 0 Doppler filter, 1 easy weight,
// 2 hard weight, 3 easy beamform, 4 hard beamform, 5 pulse compression,
// 6 CFAR.
type Workloads struct {
	// Flops[i] is the per-CPI floating point work of task i.
	Flops [7]float64
	// CubeBytes is the size of the raw CPI cube read by (or delivered to)
	// the Doppler task.
	CubeBytes float64
	// DopplerToWeight[0] and [1] are the easy/hard training data volumes
	// sent from the Doppler task to the weight tasks.
	DopplerToWeight [2]float64
	// DopplerToBF[0] and [1] are the easy/hard snapshot volumes sent from
	// the Doppler task to the beamforming tasks.
	DopplerToBF [2]float64
	// WeightToBF[0] and [1] are the easy/hard weight vector volumes.
	WeightToBF [2]float64
	// BFToPC[0] and [1] are the easy/hard beamformed profile volumes sent
	// to pulse compression.
	BFToPC [2]float64
	// PCToCFAR is the compressed cube volume.
	PCToCFAR float64
	// ReportBytes is the (small) detection report volume out of CFAR.
	ReportBytes float64
}

// cmulFlops is the cost of one complex multiply-accumulate (4 real
// multiplies + 4 adds).
const cmulFlops = 8

// fftFlops estimates the cost of one complex FFT of length n
// (5 n log2 n, the standard radix-2 operation count).
func fftFlops(n int) float64 {
	if n <= 1 {
		return 1
	}
	return 5 * float64(n) * math.Log2(float64(n))
}

// ComputeWorkloads derives the per-task costs from the processing
// parameters.
func ComputeWorkloads(p *Params) Workloads {
	c := float64(p.Dims.Channels)
	r := float64(p.Dims.Ranges)
	l := p.Bins()
	lf := float64(l)
	b := float64(len(p.Beams))
	e := float64(len(p.EasyBins()))
	h := float64(len(p.HardBins()))
	ke := float64(p.TrainEasy)
	kh := float64(p.TrainHard)
	k := float64(p.StaggerCount())
	dofE := c
	dofH := k * c
	const wire = 8 // bytes per complex64 sample on the wire / disk

	var w Workloads

	// Task 0 — Doppler filter processing: per (channel, range gate) one
	// windowed length-L transform per stagger plus the window products.
	w.Flops[0] = c * r * (k*fftFlops(l) + k*6*lf)

	// Tasks 1/2 — weight computation: covariance accumulation over the
	// training gates, one Cholesky, and one pair of triangular solves per
	// beam, for every bin in the set.
	weightFlops := func(bins, k, dof float64) float64 {
		cov := k * dof * dof * cmulFlops
		chol := 2 * dof * dof * dof // ~ n^3/3 complex ops * 6 flops
		solves := b * 2 * dof * dof * 4
		return bins * (cov + chol + solves)
	}
	w.Flops[1] = weightFlops(e, ke, dofE)
	w.Flops[2] = weightFlops(h, kh, dofH)

	// Tasks 3/4 — beamforming: a DoF-length inner product per
	// (bin, beam, range gate).
	w.Flops[3] = e * b * r * dofE * cmulFlops
	w.Flops[4] = h * b * r * dofH * cmulFlops

	// Task 5 — pulse compression: per (beam, bin) one forward FFT, one
	// spectrum product, one inverse FFT at the padded length.
	m := float64(nextPow2(p.Dims.Ranges + p.PulseLen - 1))
	w.Flops[5] = b * lf * (2*fftFlops(int(m)) + m*cmulFlops)

	// Task 6 — CFAR: sliding-window power estimate and compare per cell.
	w.Flops[6] = b * lf * r * 10

	// Inter-task volumes.
	w.CubeBytes = c * float64(p.Dims.Pulses) * r * wire
	w.DopplerToWeight = [2]float64{e * ke * dofE * wire, h * kh * dofH * wire}
	w.DopplerToBF = [2]float64{e * r * dofE * wire, h * r * dofH * wire}
	w.WeightToBF = [2]float64{e * b * dofE * wire, h * b * dofH * wire}
	w.BFToPC = [2]float64{e * b * r * wire, h * b * r * wire}
	w.PCToCFAR = b * lf * r * wire
	w.ReportBytes = 4096
	return w
}

// TotalFlops returns the sum over all seven tasks.
func (w Workloads) TotalFlops() float64 {
	var s float64
	for _, f := range w.Flops {
		s += f
	}
	return s
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
