package stap

import (
	"fmt"

	"stapio/internal/signal"
)

// Compressor performs pulse compression on beam-cube range profiles with
// the scenario's matched-filter replica. One Compressor is not safe for
// concurrent use; workers clone it.
type Compressor struct {
	fc   *signal.FastConvolver
	full []complex128
}

// NewCompressor builds a compressor for the parameters' replica and range
// extent.
func NewCompressor(p *Params) *Compressor {
	fc := signal.NewFastConvolver(p.Dims.Ranges, p.Replica())
	return &Compressor{fc: fc, full: make([]complex128, fc.OutLen())}
}

// Clone returns an independent compressor for another goroutine.
func (c *Compressor) Clone() *Compressor {
	return &Compressor{fc: c.fc.Clone(), full: make([]complex128, c.fc.OutLen())}
}

// CompressProfile compresses one range profile in place.
func (c *Compressor) CompressProfile(prof []complex128) {
	c.fc.Convolve(prof, c.full)
	copy(prof, c.fc.MatchedOutput(c.full))
}

// Compress pulse-compresses the (beam, bin) profiles listed in pairs; if
// pairs is nil every profile of the cube is compressed. Profiles are
// independent, so the pipeline partitions the (beam, bin) product space
// among pulse-compression workers.
func Compress(p *Params, bc *BeamCube, c *Compressor, pairs []BeamBin) error {
	if bc.Ranges != p.Dims.Ranges {
		return fmt.Errorf("stap: beam cube ranges %d, params %d", bc.Ranges, p.Dims.Ranges)
	}
	if pairs == nil {
		pairs = AllBeamBins(bc.Beams, bc.Bins)
	}
	for _, pb := range pairs {
		if pb.Beam < 0 || pb.Beam >= bc.Beams || pb.Bin < 0 || pb.Bin >= bc.Bins {
			return fmt.Errorf("stap: beam/bin pair %+v out of range", pb)
		}
		c.CompressProfile(bc.Profile(pb.Beam, pb.Bin))
	}
	return nil
}

// BeamBin identifies one (beam, Doppler-bin) range profile.
type BeamBin struct {
	Beam, Bin int
}

// AllBeamBins enumerates the full (beam, bin) product space in row-major
// (beam-major) order.
func AllBeamBins(beams, bins int) []BeamBin {
	out := make([]BeamBin, 0, beams*bins)
	for b := 0; b < beams; b++ {
		for d := 0; d < bins; d++ {
			out = append(out, BeamBin{Beam: b, Bin: d})
		}
	}
	return out
}
