package stap

import (
	"fmt"

	"stapio/internal/signal"
)

// compressBatch is how many range profiles one Compressor carries through
// a batched matched-filter pass: enough to amortise the twiddle-table and
// kernel-spectrum walks across profiles while keeping the scratch a few
// FFT buffers. Per-profile arithmetic is batch-size independent.
const compressBatch = 4

// Compressor performs pulse compression on beam-cube range profiles with
// the scenario's matched-filter replica. One Compressor is not safe for
// concurrent use; workers clone it.
type Compressor struct {
	fc   *signal.FastConvolver
	full []complex128
	// profs gathers profile slices for one batched pass without
	// allocating.
	profs [][]complex128
}

// NewCompressor builds a compressor for the parameters' replica and range
// extent.
func NewCompressor(p *Params) *Compressor {
	fc := signal.NewFastConvolver(p.Dims.Ranges, p.Replica())
	fc.EnsureBatch(compressBatch)
	return &Compressor{
		fc:    fc,
		full:  make([]complex128, fc.OutLen()),
		profs: make([][]complex128, 0, compressBatch),
	}
}

// Clone returns an independent compressor for another goroutine.
func (c *Compressor) Clone() *Compressor {
	return &Compressor{
		fc:    c.fc.Clone(),
		full:  make([]complex128, c.fc.OutLen()),
		profs: make([][]complex128, 0, compressBatch),
	}
}

// CompressProfile compresses one range profile in place.
func (c *Compressor) CompressProfile(prof []complex128) {
	c.fc.Convolve(prof, c.full)
	copy(prof, c.fc.MatchedOutput(c.full))
}

// Compress pulse-compresses the (beam, bin) profiles listed in pairs; if
// pairs is nil every profile of the cube is compressed. Profiles are
// independent, so the pipeline partitions the (beam, bin) product space
// among pulse-compression workers; within a worker's share the profiles
// move through the convolver's shared forward transform compressBatch at
// a time, with per-profile results bit-identical to CompressProfile.
func Compress(p *Params, bc *BeamCube, c *Compressor, pairs []BeamBin) error {
	if bc.Ranges != p.Dims.Ranges {
		return fmt.Errorf("stap: beam cube ranges %d, params %d", bc.Ranges, p.Dims.Ranges)
	}
	if pairs == nil {
		pairs = AllBeamBins(bc.Beams, bc.Bins)
	}
	for _, pb := range pairs {
		if pb.Beam < 0 || pb.Beam >= bc.Beams || pb.Bin < 0 || pb.Bin >= bc.Bins {
			return fmt.Errorf("stap: beam/bin pair %+v out of range", pb)
		}
	}
	profs := c.profs[:0]
	for _, pb := range pairs {
		profs = append(profs, bc.Profile(pb.Beam, pb.Bin))
		if len(profs) == cap(profs) {
			c.fc.MatchedFilterMany(profs)
			profs = profs[:0]
		}
	}
	if len(profs) > 0 {
		c.fc.MatchedFilterMany(profs)
	}
	return nil
}

// BeamBin identifies one (beam, Doppler-bin) range profile.
type BeamBin struct {
	Beam, Bin int
}

// AllBeamBins enumerates the full (beam, bin) product space in row-major
// (beam-major) order.
func AllBeamBins(beams, bins int) []BeamBin {
	out := make([]BeamBin, 0, beams*bins)
	for b := 0; b < beams; b++ {
		for d := 0; d < bins; d++ {
			out = append(out, BeamBin{Beam: b, Bin: d})
		}
	}
	return out
}
