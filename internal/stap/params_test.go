package stap

import (
	"math"
	"math/cmplx"
	"testing"

	"stapio/internal/cube"
)

func testDims() cube.Dims { return cube.Dims{Channels: 4, Pulses: 17, Ranges: 64} }

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams(testDims())
	if err := p.Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
	p2 := DefaultParams(cube.Dims{Channels: 16, Pulses: 128, Ranges: 1024})
	if err := p2.Validate(); err != nil {
		t.Fatalf("paper-size DefaultParams invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.Dims.Channels = 0 },
		func(p *Params) { p.Dims.Pulses = 1 },
		func(p *Params) { p.Beams = nil },
		func(p *Params) { p.Beams = []float64{2} },
		func(p *Params) { p.ClutterNotch = -0.1 },
		func(p *Params) { p.ClutterNotch = 0.6 },
		func(p *Params) { p.TrainEasy = 0 },
		func(p *Params) { p.TrainHard = p.Dims.Ranges + 1 },
		func(p *Params) { p.DiagonalLoad = -1 },
		func(p *Params) { p.PulseLen = 0 },
		func(p *Params) { p.PulseLen = p.Dims.Ranges + 1 },
		func(p *Params) { p.Bandwidth = 0 },
		func(p *Params) { p.CFAR.Window = 0 },
		func(p *Params) { p.CFAR.Guard = -1 },
		func(p *Params) { p.CFAR.Window = p.Dims.Ranges },
	}
	for i, mutate := range mutations {
		p := DefaultParams(testDims())
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestBinDopplerMapping(t *testing.T) {
	p := DefaultParams(testDims()) // 16 bins
	if p.Bins() != 16 {
		t.Fatalf("Bins = %d, want 16", p.Bins())
	}
	if f := p.BinDoppler(0); f != 0 {
		t.Errorf("BinDoppler(0) = %v, want 0", f)
	}
	if f := p.BinDoppler(8); f != -0.5 {
		t.Errorf("BinDoppler(8) = %v, want -0.5", f)
	}
	if f := p.BinDoppler(4); f != 0.25 {
		t.Errorf("BinDoppler(4) = %v, want 0.25", f)
	}
	// BinForDoppler inverts BinDoppler for every bin.
	for d := 0; d < p.Bins(); d++ {
		if got := p.BinForDoppler(p.BinDoppler(d)); got != d {
			t.Errorf("BinForDoppler(BinDoppler(%d)) = %d", d, got)
		}
	}
}

func TestEasyHardPartition(t *testing.T) {
	p := DefaultParams(testDims())
	easy, hard := p.EasyBins(), p.HardBins()
	if len(easy)+len(hard) != p.Bins() {
		t.Fatalf("easy %d + hard %d != bins %d", len(easy), len(hard), p.Bins())
	}
	seen := map[int]bool{}
	for _, d := range append(append([]int{}, easy...), hard...) {
		if seen[d] {
			t.Fatalf("bin %d in both sets", d)
		}
		seen[d] = true
	}
	// Hard set contains zero Doppler.
	foundZero := false
	for _, d := range hard {
		if math.Abs(p.BinDoppler(d)) > p.ClutterNotch {
			t.Errorf("hard bin %d doppler %v outside notch", d, p.BinDoppler(d))
		}
		if d == 0 {
			foundZero = true
		}
	}
	if !foundZero {
		t.Error("bin 0 (zero Doppler) should be hard")
	}
	for _, d := range easy {
		if p.IsHard(d) {
			t.Errorf("easy bin %d reported hard", d)
		}
	}
}

func TestDoFAndSteering(t *testing.T) {
	p := DefaultParams(testDims())
	c := p.Dims.Channels
	for d := 0; d < p.Bins(); d++ {
		dof := p.DoF(d)
		s := p.Steering(0.3, d)
		if len(s) != dof {
			t.Fatalf("bin %d: steering len %d, want DoF %d", d, len(s), dof)
		}
		if p.IsHard(d) {
			if dof != 2*c {
				t.Errorf("hard bin %d DoF %d, want %d", d, dof, 2*c)
			}
			// Second stagger is first rotated by the bin Doppler phase.
			rot := cmplx.Exp(complex(0, 2*math.Pi*p.BinDoppler(d)))
			for k := 0; k < c; k++ {
				if cmplx.Abs(s[c+k]-s[k]*rot) > 1e-12 {
					t.Errorf("hard steering stagger phase wrong at bin %d elem %d", d, k)
				}
			}
		} else if dof != c {
			t.Errorf("easy bin %d DoF %d, want %d", d, dof, c)
		}
	}
}

func TestReplicaEnergy(t *testing.T) {
	p := DefaultParams(testDims())
	rep := p.Replica()
	if len(rep) != p.PulseLen {
		t.Fatalf("replica len %d, want %d", len(rep), p.PulseLen)
	}
	var e float64
	for _, v := range rep {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(e-1) > 1e-9 {
		t.Errorf("replica energy %g, want 1", e)
	}
}

func TestComputeWorkloadsShape(t *testing.T) {
	p := DefaultParams(cube.Dims{Channels: 16, Pulses: 128, Ranges: 1024})
	w := ComputeWorkloads(&p)
	for i, f := range w.Flops {
		if f <= 0 {
			t.Errorf("task %d flops = %g, want > 0", i, f)
		}
	}
	if w.TotalFlops() <= w.Flops[0] {
		t.Error("total flops must exceed any single task")
	}
	// Hard weight computation strictly costs more than easy per bin: the
	// hard set here is small, but per-bin hard cost must dominate.
	e, h := float64(len(p.EasyBins())), float64(len(p.HardBins()))
	if w.Flops[2]/h <= w.Flops[1]/e {
		t.Error("per-bin hard weight cost should exceed easy")
	}
	if w.Flops[4]/h <= w.Flops[3]/e {
		t.Error("per-bin hard beamforming cost should exceed easy")
	}
	if w.CubeBytes != float64(p.Dims.Bytes()) {
		t.Errorf("CubeBytes = %g, want %d", w.CubeBytes, p.Dims.Bytes())
	}
	// Paper-scale cube is 16 MiB.
	if w.CubeBytes != float64(16<<20) {
		t.Errorf("CubeBytes = %g, want 16 MiB", w.CubeBytes)
	}
}
