package stap

import (
	"testing"

	"stapio/internal/cube"
	"stapio/internal/radar"
)

// The Doppler→CFAR hot path — Doppler filtering, beamforming, pulse
// compression, and CFAR — must not allocate in steady state once its
// per-worker scratch state (DopplerScratch, weight sets, Compressor,
// CFARScratch) is built. These regression tests pin that property with
// testing.AllocsPerRun so a future change that re-introduces per-CPI
// allocation fails CI rather than quietly eroding throughput.

func allocTestSetup(t testing.TB) (Params, *cube.Cube) {
	t.Helper()
	s := radar.SmallTestScenario()
	p := DefaultParams(s.Dims)
	p.PulseLen = s.PulseLen
	p.Bandwidth = s.Bandwidth
	cb, err := s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	return p, cb
}

func TestDopplerFilterRangesZeroAlloc(t *testing.T) {
	p, cb := allocTestSetup(t)
	out := NewDopplerCube(&p)
	sc := NewDopplerScratch(&p)
	blk := cube.Block{Lo: 0, Hi: p.Dims.Ranges}
	if err := DopplerFilterRanges(&p, cb, blk, out, sc); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(10, func() {
		if err := DopplerFilterRanges(&p, cb, blk, out, sc); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("DopplerFilterRanges allocated %v times per CPI, want 0", n)
	}
}

func TestBeamformZeroAlloc(t *testing.T) {
	p, cb := allocTestSetup(t)
	dc, err := DopplerFilter(&p, cb, 0)
	if err != nil {
		t.Fatal(err)
	}
	easy := InitialWeights(&p, p.EasyBins())
	hard := InitialWeights(&p, p.HardBins())
	bc := NewBeamCube(&p)
	n := testing.AllocsPerRun(10, func() {
		if err := Beamform(&p, dc, easy, easy.Bins, bc); err != nil {
			t.Fatal(err)
		}
		if err := Beamform(&p, dc, hard, hard.Bins, bc); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("Beamform allocated %v times per CPI, want 0", n)
	}
}

func TestCompressZeroAlloc(t *testing.T) {
	p, _ := allocTestSetup(t)
	bc := NewBeamCube(&p)
	for i := range bc.Data {
		bc.Data[i] = complex(float64(i%5)*0.2, 0.1)
	}
	comp := NewCompressor(&p)
	pairs := AllBeamBins(bc.Beams, bc.Bins)
	n := testing.AllocsPerRun(10, func() {
		if err := Compress(&p, bc, comp, pairs); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("Compress allocated %v times per CPI, want 0", n)
	}
}

func TestCovAccumulatorZeroAlloc(t *testing.T) {
	// The banded covariance accumulator is per-CPI steady state too: after
	// construction, an AddBand/Finish/Reset cycle must not allocate.
	p, cb := allocTestSetup(t)
	dc, err := DopplerFilter(&p, cb, 0)
	if err != nil {
		t.Fatal(err)
	}
	bins := p.EasyBins()
	acc, err := NewCovAccumulator(&p, bins, false)
	if err != nil {
		t.Fatal(err)
	}
	bb := cube.Block{Lo: 0, Hi: len(bins)}
	n := testing.AllocsPerRun(10, func() {
		if err := acc.AddBand(dc, 0, bb); err != nil {
			t.Fatal(err)
		}
		if _, err := acc.Finish(); err != nil {
			t.Fatal(err)
		}
		acc.Reset()
	})
	if n != 0 {
		t.Errorf("CovAccumulator cycle allocated %v times per CPI, want 0", n)
	}
}

func TestCFARZeroAllocWithoutDetections(t *testing.T) {
	// With a caller-owned scratch and no threshold crossings, every CFAR
	// variant must complete a CPI without allocating; the detection slice
	// is the only output that may allocate, and only when detections exist.
	p, _ := allocTestSetup(t)
	bc := NewBeamCube(&p) // all-zero: no cell can exceed its threshold
	pairs := AllBeamBins(bc.Beams, bc.Bins)
	for _, kind := range []CFARKind{CFARCellAveraging, CFARGreatestOf, CFARSmallestOf, CFAROrderedStatistic} {
		sc := NewCFARScratch(&p)
		n := testing.AllocsPerRun(10, func() {
			dets, err := CFARWithScratch(&p, kind, bc, pairs, sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(dets) != 0 {
				t.Fatalf("%v: unexpected detections on a zero cube", kind)
			}
		})
		if n != 0 {
			t.Errorf("%v CFAR allocated %v times per CPI, want 0", kind, n)
		}
	}
}

func TestCFARScratchMatchesScratchless(t *testing.T) {
	// Scratch reuse must not change the detections.
	p, cb := allocTestSetup(t)
	dc, err := DopplerFilter(&p, cb, 0)
	if err != nil {
		t.Fatal(err)
	}
	bc := NewBeamCube(&p)
	easy := InitialWeights(&p, p.EasyBins())
	hard := InitialWeights(&p, p.HardBins())
	if err := Beamform(&p, dc, easy, easy.Bins, bc); err != nil {
		t.Fatal(err)
	}
	if err := Beamform(&p, dc, hard, hard.Bins, bc); err != nil {
		t.Fatal(err)
	}
	if err := Compress(&p, bc, NewCompressor(&p), nil); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []CFARKind{CFARCellAveraging, CFARGreatestOf, CFARSmallestOf, CFAROrderedStatistic} {
		want, err := CFARWith(&p, kind, bc, nil)
		if err != nil {
			t.Fatal(err)
		}
		sc := NewCFARScratch(&p)
		pairs := AllBeamBins(bc.Beams, bc.Bins)
		// Run twice through the same scratch: results must be stable.
		for pass := 0; pass < 2; pass++ {
			got, err := CFARWithScratch(&p, kind, bc, pairs, sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v pass %d: %d detections with scratch, %d without", kind, pass, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v pass %d: detection %d differs: %+v vs %+v", kind, pass, i, got[i], want[i])
				}
			}
		}
	}
}
