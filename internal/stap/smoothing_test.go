package stap

import (
	"math/cmplx"
	"testing"

	"stapio/internal/linalg"
	"stapio/internal/radar"
)

func TestSolveWeightsEquivalentToComputeWeights(t *testing.T) {
	// The refactored estimate+solve path must reproduce ComputeWeights
	// exactly.
	p, dc := filteredTestCube(t, 21)
	bins := p.EasyBins()
	direct, err := ComputeWeights(p, dc, bins, false)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateCovariances(p, dc, bins, false)
	if err != nil {
		t.Fatal(err)
	}
	split, err := SolveWeights(p, est, bins, dc.Seq)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bins {
		for b := range p.Beams {
			for k := range direct.W[i][b] {
				if cmplx.Abs(direct.W[i][b][k]-split.W[i][b][k]) > 1e-12 {
					t.Fatalf("bin %d beam %d elem %d differ", bins[i], b, k)
				}
			}
		}
	}
}

func TestSolveWeightsErrors(t *testing.T) {
	p, dc := filteredTestCube(t, 22)
	bins := p.EasyBins()
	est, err := EstimateCovariances(p, dc, bins, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveWeights(p, est[:1], bins, 0); err == nil {
		t.Error("expected length mismatch error")
	}
	bad := make([]*linalg.Matrix, len(bins))
	for i := range bad {
		bad[i] = linalg.NewMatrix(1, 1)
	}
	if _, err := SolveWeights(p, bad, bins, 0); err == nil {
		t.Error("expected DoF mismatch error")
	}
}

func TestCovarianceSmootherBlends(t *testing.T) {
	a := linalg.NewMatrix(2, 2)
	a.Set(0, 0, 4)
	b := linalg.NewMatrix(2, 2)
	b.Set(0, 0, 8)

	s := &CovarianceSmoother{Lambda: 0.5}
	first := s.Update([]*linalg.Matrix{a})
	if first[0].At(0, 0) != 4 {
		t.Errorf("first update = %v, want 4", first[0].At(0, 0))
	}
	// The smoother must not alias the caller's matrix.
	a.Set(0, 0, 999)
	second := s.Update([]*linalg.Matrix{b})
	if got := second[0].At(0, 0); got != 6 { // 0.5*4 + 0.5*8
		t.Errorf("blend = %v, want 6", got)
	}
	// Lambda 0: passthrough.
	s0 := &CovarianceSmoother{}
	out := s0.Update([]*linalg.Matrix{b})
	if out[0] != b {
		t.Error("lambda=0 should pass estimates through")
	}
}

func TestForgettingValidation(t *testing.T) {
	p := DefaultParams(testDims())
	p.Forgetting = 1
	if err := p.Validate(); err == nil {
		t.Error("forgetting=1 should fail validation")
	}
	p.Forgetting = -0.1
	if err := p.Validate(); err == nil {
		t.Error("negative forgetting should fail validation")
	}
}

func TestSmoothedProcessorStabilisesWeights(t *testing.T) {
	// With heavy smoothing the weights change less between CPIs than with
	// per-CPI SMI, while detections still work.
	s := radar.SmallTestScenario()
	weightDelta := func(forgetting float64) float64 {
		p := DefaultParams(s.Dims)
		p.PulseLen = s.PulseLen
		p.Bandwidth = s.Bandwidth
		p.Forgetting = forgetting
		pr, err := NewProcessor(p)
		if err != nil {
			t.Fatal(err)
		}
		var prev, curr *WeightSet
		for seq := uint64(0); seq < 3; seq++ {
			cb, err := s.Generate(seq)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := pr.Process(cb, seq); err != nil {
				t.Fatal(err)
			}
			prev, curr = curr, pr.prevEasyW
		}
		var delta float64
		for i := range curr.W {
			for b := range curr.W[i] {
				for k := range curr.W[i][b] {
					delta += cmplx.Abs(curr.W[i][b][k] - prev.W[i][b][k])
				}
			}
		}
		return delta
	}
	raw := weightDelta(0)
	smooth := weightDelta(0.9)
	if smooth >= raw {
		t.Errorf("smoothed weight delta %g not below raw %g", smooth, raw)
	}
	t.Logf("CPI-to-CPI weight change: raw %g, smoothed %g", raw, smooth)
}

func TestSmoothedChainStillDetects(t *testing.T) {
	s := radar.SmallTestScenario()
	p := DefaultParams(s.Dims)
	p.PulseLen = s.PulseLen
	p.Bandwidth = s.Bandwidth
	p.Forgetting = 0.7
	pr, err := NewProcessor(p)
	if err != nil {
		t.Fatal(err)
	}
	var dets []Detection
	for seq := uint64(0); seq < 3; seq++ {
		cb, err := s.Generate(seq)
		if err != nil {
			t.Fatal(err)
		}
		dets, err = pr.Process(cb, seq)
		if err != nil {
			t.Fatal(err)
		}
	}
	dets = ClusterDetections(dets, 3)
	found := 0
	for ti, tg := range s.Targets {
		bin := p.BinForDoppler(tg.Doppler)
		gate := s.TargetGate(ti, 2)
		for _, d := range dets {
			if binDist(p.Bins(), d.Bin, bin) <= 1 && intAbs(d.Range-gate) <= 2 {
				found++
				break
			}
		}
	}
	if found != len(s.Targets) {
		t.Errorf("smoothed chain found %d of %d targets", found, len(s.Targets))
	}
}
