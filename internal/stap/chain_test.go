package stap

import (
	"math"
	"math/cmplx"
	"testing"

	"stapio/internal/cube"
	"stapio/internal/radar"
	"stapio/internal/signal"
)

func TestBeamformSteeredToneUnitGain(t *testing.T) {
	// A unit tone exactly on an easy bin and beam direction must come out
	// of beamforming with magnitude equal to the Doppler filter gain
	// (distortionless constraint).
	p := DefaultParams(testDims())
	p.Window = signal.WindowRect
	easy := p.EasyBins()
	d := easy[len(easy)/2]
	u := p.Beams[1]
	cb := toneCube(p.Dims, u, p.BinDoppler(d))
	dc, err := DopplerFilter(&p, cb, 0)
	if err != nil {
		t.Fatal(err)
	}
	ws := InitialWeights(&p, easy)
	bc := NewBeamCube(&p)
	if err := Beamform(&p, dc, ws, easy, bc); err != nil {
		t.Fatal(err)
	}
	prof := bc.Profile(1, d)
	want := float64(p.Bins()) // rect-window on-bin DFT gain
	for r := 0; r < p.Dims.Ranges; r++ {
		if a := cmplx.Abs(prof[r]); math.Abs(a-want) > 1e-6 {
			t.Fatalf("gate %d: beamformed magnitude %g, want %g", r, a, want)
		}
	}
}

func TestBeamformErrors(t *testing.T) {
	p := DefaultParams(testDims())
	dc := NewDopplerCube(&p)
	bc := NewBeamCube(&p)
	easy := p.EasyBins()
	ws := InitialWeights(&p, easy[:1])
	if err := Beamform(&p, dc, ws, easy, bc); err == nil {
		t.Error("expected uncovered-bin error")
	}
	// Wrong-geometry output cube.
	small := &BeamCube{Beams: 1, Bins: 1, Ranges: 1, Data: make([]complex128, 1)}
	if err := Beamform(&p, dc, ws, easy[:1], small); err == nil {
		t.Error("expected geometry error")
	}
	// Wrong weight length.
	ws.W[0][0] = ws.W[0][0][:1]
	if err := Beamform(&p, dc, ws, easy[:1], bc); err == nil {
		t.Error("expected weight length error")
	}
}

func TestCompressAndCFARFindInjectedPeak(t *testing.T) {
	p := DefaultParams(testDims())
	bc := NewBeamCube(&p)
	// Inject a chirp echo into one profile; leave the rest as weak noise
	// floor (CFAR needs a non-zero noise estimate, so add a tiny DC).
	for i := range bc.Data {
		bc.Data[i] = 1e-3
	}
	chirp := signal.LFMChirp(p.PulseLen, p.Bandwidth)
	prof := bc.Profile(1, 2)
	const g0 = 30
	for i, c := range chirp {
		prof[g0+i] += c * 10
	}
	comp := NewCompressor(&p)
	if err := Compress(&p, bc, comp, nil); err != nil {
		t.Fatal(err)
	}
	dets, err := CFAR(&p, bc, nil)
	if err != nil {
		t.Fatal(err)
	}
	dets = ClusterDetections(dets, 3)
	if len(dets) == 0 {
		t.Fatal("no detections")
	}
	// The strongest detection must be at (beam 1, bin 2, gate g0).
	best := dets[0]
	for _, d := range dets[1:] {
		if d.Power > best.Power {
			best = d
		}
	}
	if best.Beam != 1 || best.Bin != 2 {
		t.Errorf("best detection at beam %d bin %d, want 1/2", best.Beam, best.Bin)
	}
	if best.Range != g0 {
		t.Errorf("best detection at gate %d, want %d", best.Range, g0)
	}
	if snr := best.SNR(&p); snr < float64(p.CFAR.ThresholdDB) {
		t.Errorf("SNR %g below threshold %d", snr, p.CFAR.ThresholdDB)
	}
}

func TestCompressErrors(t *testing.T) {
	p := DefaultParams(testDims())
	bc := NewBeamCube(&p)
	comp := NewCompressor(&p)
	if err := Compress(&p, bc, comp, []BeamBin{{Beam: 99, Bin: 0}}); err == nil {
		t.Error("expected out-of-range pair error")
	}
	if _, err := CFAR(&p, bc, []BeamBin{{Beam: 0, Bin: -1}}); err == nil {
		t.Error("expected CFAR pair error")
	}
}

func TestCompressorCloneIndependent(t *testing.T) {
	p := DefaultParams(testDims())
	a := NewCompressor(&p)
	b := a.Clone()
	x := make([]complex128, p.Dims.Ranges)
	x[5] = 1
	y := append([]complex128(nil), x...)
	a.CompressProfile(x)
	b.CompressProfile(y)
	for i := range x {
		if cmplx.Abs(x[i]-y[i]) > 1e-12 {
			t.Fatal("clone produces different output")
		}
	}
}

func TestClusterDetections(t *testing.T) {
	dets := []Detection{
		{Beam: 0, Bin: 1, Range: 10, Power: 1},
		{Beam: 0, Bin: 1, Range: 11, Power: 5},
		{Beam: 0, Bin: 1, Range: 12, Power: 2},
		{Beam: 0, Bin: 1, Range: 40, Power: 3},
		{Beam: 1, Bin: 1, Range: 41, Power: 4},
	}
	out := ClusterDetections(dets, 2)
	if len(out) != 3 {
		t.Fatalf("clustered to %d, want 3: %+v", len(out), out)
	}
	if out[0].Range != 11 || out[0].Power != 5 {
		t.Errorf("first cluster peak = %+v, want range 11 power 5", out[0])
	}
	if ClusterDetections(nil, 2) != nil {
		t.Error("nil input should return nil")
	}
}

// TestEndToEndDetection is the integration test for the whole chain: a
// scenario with known targets must produce detections at the right beams,
// Doppler bins, and range gates, and (almost) nowhere else.
func TestEndToEndDetection(t *testing.T) {
	dims := cube.Dims{Channels: 6, Pulses: 33, Ranges: 128}
	s := &radar.Scenario{
		Dims:       dims,
		PulseLen:   16,
		Bandwidth:  0.8,
		NoisePower: 1,
		Targets: []radar.Target{
			{Angle: 0, Doppler: 0.25, Range: 40, SNR: 6},
			{Angle: -0.5, Doppler: -0.3125, Range: 90, SNR: 6},
		},
		Clutter: radar.Clutter{Patches: 10, CNR: 25, Beta: 1},
		Seed:    99,
	}
	p := DefaultParams(dims)
	p.Beams = []float64{-0.5, 0, 0.5}
	p.PulseLen = s.PulseLen
	p.Bandwidth = s.Bandwidth
	p.TrainHard = 64
	p.CFAR.ThresholdDB = 15
	pr, err := NewProcessor(p)
	if err != nil {
		t.Fatal(err)
	}

	// Push 3 CPIs: the first primes the adaptive weights, later ones use
	// trained weights.
	var dets []Detection
	for seq := uint64(0); seq < 3; seq++ {
		cb, err := s.Generate(seq)
		if err != nil {
			t.Fatal(err)
		}
		dets, err = pr.Process(cb, seq)
		if err != nil {
			t.Fatal(err)
		}
	}
	if pr.Processed() != 3 {
		t.Errorf("Processed = %d, want 3", pr.Processed())
	}
	dets = ClusterDetections(dets, 4)

	type truth struct {
		beam, bin, gate int
	}
	wants := []truth{
		{beam: 1, bin: p.BinForDoppler(0.25), gate: 40},
		{beam: 0, bin: p.BinForDoppler(-0.3125), gate: 90},
	}
	for _, w := range wants {
		found := false
		for _, d := range dets {
			if d.Beam == w.beam && absInt(d.Bin-w.bin) <= 1 && absInt(d.Range-w.gate) <= 2 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("target at beam %d bin %d gate %d not detected; got %d detections: %+v",
				w.beam, w.bin, w.gate, len(dets), firstN(dets, 10))
		}
	}
	// False alarms should be bounded: with a 15 dB threshold the total
	// report count must stay small relative to the cell count.
	cells := len(p.Beams) * p.Bins() * dims.Ranges
	if len(dets) > cells/100 {
		t.Errorf("%d clustered detections out of %d cells — too many false alarms", len(dets), cells)
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func firstN(d []Detection, n int) []Detection {
	if len(d) < n {
		return d
	}
	return d[:n]
}

func TestProcessorRejectsInvalidParams(t *testing.T) {
	p := DefaultParams(testDims())
	p.Bandwidth = 0
	if _, err := NewProcessor(p); err == nil {
		t.Error("expected validation error")
	}
}

func TestProcessorWeightFeedback(t *testing.T) {
	// After the first Process call the stored weights must be adaptive
	// (different from the initial conventional weights).
	s := radar.SmallTestScenario()
	p := DefaultParams(s.Dims)
	pr, err := NewProcessor(p)
	if err != nil {
		t.Fatal(err)
	}
	init := InitialWeights(&p, pr.EasyBins())
	cb, err := s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Process(cb, 0); err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for i := range pr.prevEasyW.W {
		for b := range pr.prevEasyW.W[i] {
			for k := range pr.prevEasyW.W[i][b] {
				diff += cmplx.Abs(pr.prevEasyW.W[i][b][k] - init.W[i][b][k])
			}
		}
	}
	if diff < 1e-9 {
		t.Error("weights did not adapt after first CPI")
	}
	if pr.prevEasyW.Seq != 0 {
		t.Errorf("weight Seq = %d, want 0", pr.prevEasyW.Seq)
	}
}
