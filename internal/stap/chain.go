package stap

import (
	"fmt"

	"stapio/internal/cube"
)

// Processor is the sequential reference implementation of the full STAP
// chain. It executes the seven tasks in order for each CPI, carrying the
// temporal dependency (weights trained on the previous CPI's Doppler
// output) across calls. The parallel pipeline executors must produce the
// same detections; tests compare against this.
type Processor struct {
	P          Params
	easyBins   []int
	hardBins   []int
	comp       *Compressor
	prevEasyW  *WeightSet
	prevHardW  *WeightSet
	prevFilter *DopplerCube
	easySmooth CovarianceSmoother
	hardSmooth CovarianceSmoother
	processed  int
}

// NewProcessor validates p and builds a processor primed with non-adaptive
// initial weights.
func NewProcessor(p Params) (*Processor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pr := &Processor{
		P:          p,
		easyBins:   p.EasyBins(),
		hardBins:   p.HardBins(),
		comp:       NewCompressor(&p),
		easySmooth: CovarianceSmoother{Lambda: p.Forgetting},
		hardSmooth: CovarianceSmoother{Lambda: p.Forgetting},
	}
	pr.prevEasyW = InitialWeights(&p, pr.easyBins)
	pr.prevHardW = InitialWeights(&p, pr.hardBins)
	return pr, nil
}

// EasyBins returns the easy Doppler bin set.
func (pr *Processor) EasyBins() []int { return pr.easyBins }

// HardBins returns the hard Doppler bin set.
func (pr *Processor) HardBins() []int { return pr.hardBins }

// Processed returns the number of CPIs pushed through the chain.
func (pr *Processor) Processed() int { return pr.processed }

// Process runs one CPI through the full chain and returns its detections.
// The weights applied to this CPI were trained on the previous one (or the
// initial non-adaptive weights for the first CPI), exactly as in the
// pipelined system: beamforming of CPI k never waits for CPI k's weights.
func (pr *Processor) Process(cb *cube.Cube, seq uint64) ([]Detection, error) {
	// Task 0: Doppler filter processing.
	dc, err := DopplerFilter(&pr.P, cb, seq)
	if err != nil {
		return nil, fmt.Errorf("stap: doppler: %w", err)
	}

	// Tasks 3/4: beamforming with the previous CPI's weights.
	bc := NewBeamCube(&pr.P)
	bc.Seq = seq
	if err := Beamform(&pr.P, dc, pr.prevEasyW, pr.easyBins, bc); err != nil {
		return nil, fmt.Errorf("stap: easy beamform: %w", err)
	}
	if err := Beamform(&pr.P, dc, pr.prevHardW, pr.hardBins, bc); err != nil {
		return nil, fmt.Errorf("stap: hard beamform: %w", err)
	}

	// Tasks 1/2: weight computation for the *next* CPI from this CPI's
	// Doppler output (runs concurrently with beamforming in the pipeline;
	// sequentially here), with optional covariance smoothing across CPIs.
	easyEst, err := EstimateCovariances(&pr.P, dc, pr.easyBins, false)
	if err != nil {
		return nil, fmt.Errorf("stap: easy weights: %w", err)
	}
	easyW, err := SolveWeights(&pr.P, pr.easySmooth.Update(easyEst), pr.easyBins, seq)
	if err != nil {
		return nil, fmt.Errorf("stap: easy weights: %w", err)
	}
	hardEst, err := EstimateCovariances(&pr.P, dc, pr.hardBins, true)
	if err != nil {
		return nil, fmt.Errorf("stap: hard weights: %w", err)
	}
	hardW, err := SolveWeights(&pr.P, pr.hardSmooth.Update(hardEst), pr.hardBins, seq)
	if err != nil {
		return nil, fmt.Errorf("stap: hard weights: %w", err)
	}
	pr.prevEasyW, pr.prevHardW = easyW, hardW
	pr.prevFilter = dc

	// Task 5: pulse compression.
	if err := Compress(&pr.P, bc, pr.comp, nil); err != nil {
		return nil, fmt.Errorf("stap: pulse compression: %w", err)
	}

	// Task 6: CFAR (with the configured variant).
	dets, err := CFARWith(&pr.P, pr.P.CFAR.Kind, bc, nil)
	if err != nil {
		return nil, fmt.Errorf("stap: cfar: %w", err)
	}
	pr.processed++
	return dets, nil
}
