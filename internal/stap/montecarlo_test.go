package stap

import (
	"strings"
	"testing"

	"stapio/internal/cube"
	"stapio/internal/radar"
)

func mcScenario(snr float64) *radar.Scenario {
	return &radar.Scenario{
		Dims:       cube.Dims{Channels: 4, Pulses: 17, Ranges: 64},
		PulseLen:   8,
		Bandwidth:  0.8,
		NoisePower: 1,
		Targets: []radar.Target{
			{Angle: 0, Doppler: 0.25, Range: 20, SNR: snr},
		},
		Seed: 555,
	}
}

func mcParams(s *radar.Scenario) Params {
	p := DefaultParams(s.Dims)
	p.PulseLen = s.PulseLen
	p.Bandwidth = s.Bandwidth
	p.CFAR.ThresholdDB = 13
	return p
}

func TestMonteCarloStrongTargetDetected(t *testing.T) {
	s := mcScenario(15)
	cfg := DefaultMCConfig()
	cfg.Trials = 8
	stats, err := MonteCarlo(s, mcParams(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pd() < 0.9 {
		t.Errorf("Pd = %.2f for a 15 dB target, want >= 0.9 (%s)", stats.Pd(), stats)
	}
	if stats.Pfa() > 5e-3 {
		t.Errorf("Pfa = %.2e too high (%s)", stats.Pfa(), stats)
	}
	if !strings.Contains(stats.String(), "Pd=") {
		t.Error("String() misbehaves")
	}
}

func TestMonteCarloWeakTargetMissed(t *testing.T) {
	s := mcScenario(-20)
	cfg := DefaultMCConfig()
	cfg.Trials = 6
	stats, err := MonteCarlo(s, mcParams(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pd() > 0.4 {
		t.Errorf("Pd = %.2f for a -20 dB target, want near 0", stats.Pd())
	}
}

func TestMonteCarloPdMonotoneInSNR(t *testing.T) {
	cfg := DefaultMCConfig()
	cfg.Trials = 6
	var prev float64 = -1
	for _, snr := range []float64{-10, 5, 18} {
		s := mcScenario(snr)
		stats, err := MonteCarlo(s, mcParams(s), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Pd() < prev-0.15 {
			t.Errorf("Pd dropped with rising SNR: %.2f after %.2f at %g dB", stats.Pd(), prev, snr)
		}
		prev = stats.Pd()
	}
	if prev < 0.9 {
		t.Errorf("Pd at 18 dB = %.2f, want near 1", prev)
	}
}

func TestMonteCarloMovingTargetScoredAtWalkedGate(t *testing.T) {
	s := mcScenario(15)
	s.Motion = &radar.Motion{GatesPerCPI: 5}
	cfg := DefaultMCConfig()
	cfg.Trials = 4
	cfg.WarmCPIs = 2 // scored CPI is 2; gate walked to 30
	stats, err := MonteCarlo(s, mcParams(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pd() < 0.75 {
		t.Errorf("moving target Pd = %.2f, want high (scoring should track the walk)", stats.Pd())
	}
}

func TestMonteCarloErrors(t *testing.T) {
	s := mcScenario(10)
	p := mcParams(s)
	if _, err := MonteCarlo(s, p, MCConfig{Trials: 0, WarmCPIs: 1}); err == nil {
		t.Error("expected trials error")
	}
	if _, err := MonteCarlo(s, p, MCConfig{Trials: 1, WarmCPIs: 0}); err == nil {
		t.Error("expected warm-CPI error")
	}
	bad := *s
	bad.Bandwidth = 0
	if _, err := MonteCarlo(&bad, p, DefaultMCConfig()); err == nil {
		t.Error("expected scenario validation error")
	}
	badP := p
	badP.Bandwidth = 0
	if _, err := MonteCarlo(s, badP, DefaultMCConfig()); err == nil {
		t.Error("expected params validation error")
	}
	if (MCStats{}).Pd() != 0 || (MCStats{}).Pfa() != 0 {
		t.Error("zero stats should report 0")
	}
}

func TestBinDistCircular(t *testing.T) {
	if binDist(16, 0, 15) != 1 {
		t.Errorf("binDist(16,0,15) = %d, want 1 (wraparound)", binDist(16, 0, 15))
	}
	if binDist(16, 3, 7) != 4 {
		t.Errorf("binDist(16,3,7) = %d, want 4", binDist(16, 3, 7))
	}
}

func TestNearestBeam(t *testing.T) {
	p := DefaultParams(testDims()) // beams -0.5, 0, 0.5
	cases := map[float64]int{-0.9: 0, -0.3: 0, 0.1: 1, 0.4: 2, 1: 2}
	for u, want := range cases {
		if got := nearestBeam(&p, u); got != want {
			t.Errorf("nearestBeam(%g) = %d, want %d", u, got, want)
		}
	}
}
