package stap

import (
	"math"
	"testing"

	"stapio/internal/cube"
	"stapio/internal/radar"
	"stapio/internal/signal"
)

func TestSINRImprovementAgainstJammer(t *testing.T) {
	// A strong jammer is spatially coherent; the adaptive weights must
	// null it, yielding a large SINR improvement even in the easy bins
	// (jamming is white across Doppler).
	s := radar.SmallTestScenario()
	s.Targets = nil
	s.Jammers = []radar.Jammer{{Angle: 0.7, JNR: 30}}
	cb, err := s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(s.Dims)
	p.TrainEasy = 48
	dc, err := DopplerFilter(&p, cb, 0)
	if err != nil {
		t.Fatal(err)
	}
	easy := p.EasyBins()
	adaptive, err := ComputeWeights(&p, dc, easy, false)
	if err != nil {
		t.Fatal(err)
	}
	gain, err := SINRImprovement(&p, dc, adaptive, easy)
	if err != nil {
		t.Fatal(err)
	}
	if gain < 10 {
		t.Errorf("jammer nulling gain %.1f dB, want >= 10 dB", gain)
	}
	t.Logf("jammer nulling gain: %.1f dB", gain)
}

func TestMeanOutputPowerErrors(t *testing.T) {
	p := DefaultParams(testDims())
	dc := NewDopplerCube(&p)
	ws := InitialWeights(&p, p.EasyBins()[:1])
	if _, err := MeanOutputPower(&p, dc, ws, p.EasyBins()); err == nil {
		t.Error("expected uncovered-bin error")
	}
	if _, err := MeanOutputPower(&p, dc, ws, nil); err == nil {
		t.Error("expected empty-bin error")
	}
	ws.W[0][0] = ws.W[0][0][:1]
	if _, err := MeanOutputPower(&p, dc, ws, p.EasyBins()[:1]); err == nil {
		t.Error("expected weight-length error")
	}
}

func TestSINRImprovementZeroOnNoise(t *testing.T) {
	// On pure white noise, adapting buys (almost) nothing: the
	// improvement should be near 0 dB (slightly positive or negative from
	// estimation error).
	s := radar.SmallTestScenario()
	s.Targets = nil
	cb, err := s.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(s.Dims)
	p.TrainEasy = 64
	dc, err := DopplerFilter(&p, cb, 0)
	if err != nil {
		t.Fatal(err)
	}
	easy := p.EasyBins()
	adaptive, err := ComputeWeights(&p, dc, easy, false)
	if err != nil {
		t.Fatal(err)
	}
	gain, err := SINRImprovement(&p, dc, adaptive, easy)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gain) > 3 {
		t.Errorf("white-noise 'improvement' %.1f dB, want ~0", gain)
	}
}

func TestAngleDopplerMapLocatesTarget(t *testing.T) {
	// A single noise-free tone must peak at its own (angle, bin) cell.
	dims := cube.Dims{Channels: 8, Pulses: 17, Ranges: 32}
	p := DefaultParams(dims)
	p.Window = signal.WindowRect
	d := p.EasyBins()[3]
	u := 0.5
	cb := toneCube(dims, u, p.BinDoppler(d))
	dc, err := DopplerFilter(&p, cb, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ComputeAngleDopplerMap(&p, dc, 5, 41)
	if err != nil {
		t.Fatal(err)
	}
	angle, bin, power := m.Peak()
	if bin != d {
		t.Errorf("peak at bin %d, want %d", bin, d)
	}
	if math.Abs(angle-u) > 0.06 {
		t.Errorf("peak at angle %.3f, want %.3f", angle, u)
	}
	if power <= 0 {
		t.Error("peak power must be positive")
	}
	if len(m.Power) != 41 || len(m.Power[0]) != p.Bins() {
		t.Errorf("map shape %dx%d, want 41x%d", len(m.Power), len(m.Power[0]), p.Bins())
	}
}

func TestAngleDopplerMapClutterRidge(t *testing.T) {
	// With a beta=1 clutter ridge, the per-bin peak angle should track
	// the bin's Doppler: u_peak ~ 2*fd/beta.
	s := radar.SmallTestScenario()
	s.Dims = cube.Dims{Channels: 8, Pulses: 33, Ranges: 64}
	s.Targets = nil
	s.NoisePower = 0.01
	s.Clutter = radar.Clutter{Patches: 32, CNR: 40, Beta: 1}
	cb, err := s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(s.Dims)
	dc, err := DopplerFilter(&p, cb, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ComputeAngleDopplerMap(&p, dc, 10, 81)
	if err != nil {
		t.Fatal(err)
	}
	// Check a few interior bins: the angle of the per-bin power peak
	// should be near 2*fd (the ridge locus), within beam-width slack.
	checked := 0
	for j, d := range m.Bins {
		fd := p.BinDoppler(d)
		if math.Abs(fd) > 0.3 || math.Abs(fd) < 0.05 {
			continue
		}
		bestA, bestP := 0.0, -1.0
		for i, u := range m.Angles {
			if m.Power[i][j] > bestP {
				bestP = m.Power[i][j]
				bestA = u
			}
		}
		want := 2 * fd / s.Clutter.Beta
		if math.Abs(bestA-want) > 0.3 {
			t.Errorf("bin %d (fd=%.3f): ridge peak at angle %.2f, want ~%.2f", d, fd, bestA, want)
		}
		checked++
	}
	if checked < 4 {
		t.Fatalf("only %d bins checked — test geometry too small", checked)
	}
}

func TestAngleDopplerMapErrors(t *testing.T) {
	p := DefaultParams(testDims())
	dc := NewDopplerCube(&p)
	if _, err := ComputeAngleDopplerMap(&p, dc, -1, 10); err == nil {
		t.Error("expected gate range error")
	}
	if _, err := ComputeAngleDopplerMap(&p, dc, 0, 1); err == nil {
		t.Error("expected angle count error")
	}
}
