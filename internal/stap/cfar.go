package stap

import (
	"cmp"
	"fmt"
	"math"
	"slices"
)

// Detection is one CFAR threshold crossing — the pipeline's final output,
// the paper's "detection report".
type Detection struct {
	Seq       uint64  // CPI sequence number
	Beam      int     // beam index
	Bin       int     // Doppler bin index
	Range     int     // range gate
	Power     float64 // cell power |y|^2
	Threshold float64 // CFAR threshold the cell exceeded
}

// SNR returns the detection's power over its threshold noise estimate in
// dB (threshold margin plus the configured threshold).
func (d Detection) SNR(p *Params) float64 {
	if d.Threshold <= 0 {
		return math.Inf(1)
	}
	return 10*math.Log10(d.Power/d.Threshold) + float64(p.CFAR.ThresholdDB)
}

// CFARScratch holds the reusable buffers of one CFAR worker: the per-gate
// power profile plus the leading/lagging/ordered-statistic reference
// windows the variant detectors use. Build one per worker with
// NewCFARScratch (once per stage) and pass it to CFARWithScratch; a CPI
// that produces no detections then allocates nothing. A scratch must not be
// shared by two goroutines at once.
type CFARScratch struct {
	power []float64
	lead  []float64
	lag   []float64
	os    []float64
}

// NewCFARScratch builds the reusable detector buffers for p.
func NewCFARScratch(p *Params) *CFARScratch {
	w := p.CFAR.Window
	return &CFARScratch{
		power: make([]float64, p.Dims.Ranges),
		lead:  make([]float64, 0, w),
		lag:   make([]float64, 0, w),
		os:    make([]float64, 0, 2*w),
	}
}

// sortDetections orders detections by (beam, bin, range) without
// allocating. The key is unique per detection of one CPI, so the order is
// total and identical to the previous sort.Slice behaviour.
func SortDetections(dets []Detection) {
	slices.SortFunc(dets, func(a, b Detection) int {
		if a.Beam != b.Beam {
			return cmp.Compare(a.Beam, b.Beam)
		}
		if a.Bin != b.Bin {
			return cmp.Compare(a.Bin, b.Bin)
		}
		return cmp.Compare(a.Range, b.Range)
	})
}

// CFAR runs cell-averaging CFAR along range on the listed (beam, bin)
// profiles of bc (all profiles when pairs is nil) and returns the
// detections sorted by (beam, bin, range).
//
// For the cell under test at gate r, the noise level is the mean power of
// the 2*Window reference cells at distance Guard+1 .. Guard+Window on both
// sides (one-sided at the profile edges), and the cell detects when
// power > noise * 10^(ThresholdDB/10).
func CFAR(p *Params, bc *BeamCube, pairs []BeamBin) ([]Detection, error) {
	return cfarCA(p, bc, pairs, nil)
}

func cfarCA(p *Params, bc *BeamCube, pairs []BeamBin, sc *CFARScratch) ([]Detection, error) {
	if pairs == nil {
		pairs = AllBeamBins(bc.Beams, bc.Bins)
	}
	if sc == nil || len(sc.power) < bc.Ranges {
		sc = &CFARScratch{power: make([]float64, bc.Ranges)}
	}
	alpha := math.Pow(10, float64(p.CFAR.ThresholdDB)/10)
	g, w := p.CFAR.Guard, p.CFAR.Window
	var dets []Detection
	power := sc.power[:bc.Ranges]
	for _, pb := range pairs {
		if pb.Beam < 0 || pb.Beam >= bc.Beams || pb.Bin < 0 || pb.Bin >= bc.Bins {
			return nil, fmt.Errorf("stap: beam/bin pair %+v out of range", pb)
		}
		prof := bc.Profile(pb.Beam, pb.Bin)
		for r, v := range prof {
			power[r] = real(v)*real(v) + imag(v)*imag(v)
		}
		for r := 0; r < bc.Ranges; r++ {
			var sum float64
			var n int
			for k := g + 1; k <= g+w; k++ {
				if r-k >= 0 {
					sum += power[r-k]
					n++
				}
				if r+k < bc.Ranges {
					sum += power[r+k]
					n++
				}
			}
			if n == 0 {
				continue
			}
			noise := sum / float64(n)
			thr := noise * alpha
			if power[r] > thr && thr > 0 {
				dets = append(dets, Detection{
					Seq:       bc.Seq,
					Beam:      pb.Beam,
					Bin:       pb.Bin,
					Range:     r,
					Power:     power[r],
					Threshold: thr,
				})
			}
		}
	}
	SortDetections(dets)
	return dets, nil
}

// ClusterDetections collapses runs of adjacent detections (same beam and
// bin, range gates within spread) into the strongest member, suppressing
// the sidelobe responses around a compressed target peak.
func ClusterDetections(dets []Detection, spread int) []Detection {
	if len(dets) == 0 {
		return nil
	}
	var out []Detection
	best, last := dets[0], dets[0]
	for _, d := range dets[1:] {
		if d.Beam == last.Beam && d.Bin == last.Bin && d.Range-last.Range <= spread {
			if d.Power > best.Power {
				best = d
			}
			last = d
			continue
		}
		out = append(out, best)
		best, last = d, d
	}
	return append(out, best)
}
