package stap

import (
	"fmt"
	"math"
	"sort"
)

// Detection is one CFAR threshold crossing — the pipeline's final output,
// the paper's "detection report".
type Detection struct {
	Seq       uint64  // CPI sequence number
	Beam      int     // beam index
	Bin       int     // Doppler bin index
	Range     int     // range gate
	Power     float64 // cell power |y|^2
	Threshold float64 // CFAR threshold the cell exceeded
}

// SNR returns the detection's power over its threshold noise estimate in
// dB (threshold margin plus the configured threshold).
func (d Detection) SNR(p *Params) float64 {
	if d.Threshold <= 0 {
		return math.Inf(1)
	}
	return 10*math.Log10(d.Power/d.Threshold) + float64(p.CFAR.ThresholdDB)
}

// CFAR runs cell-averaging CFAR along range on the listed (beam, bin)
// profiles of bc (all profiles when pairs is nil) and returns the
// detections sorted by (beam, bin, range).
//
// For the cell under test at gate r, the noise level is the mean power of
// the 2*Window reference cells at distance Guard+1 .. Guard+Window on both
// sides (one-sided at the profile edges), and the cell detects when
// power > noise * 10^(ThresholdDB/10).
func CFAR(p *Params, bc *BeamCube, pairs []BeamBin) ([]Detection, error) {
	if pairs == nil {
		pairs = AllBeamBins(bc.Beams, bc.Bins)
	}
	alpha := math.Pow(10, float64(p.CFAR.ThresholdDB)/10)
	g, w := p.CFAR.Guard, p.CFAR.Window
	var dets []Detection
	power := make([]float64, bc.Ranges)
	for _, pb := range pairs {
		if pb.Beam < 0 || pb.Beam >= bc.Beams || pb.Bin < 0 || pb.Bin >= bc.Bins {
			return nil, fmt.Errorf("stap: beam/bin pair %+v out of range", pb)
		}
		prof := bc.Profile(pb.Beam, pb.Bin)
		for r, v := range prof {
			power[r] = real(v)*real(v) + imag(v)*imag(v)
		}
		for r := 0; r < bc.Ranges; r++ {
			var sum float64
			var n int
			for k := g + 1; k <= g+w; k++ {
				if r-k >= 0 {
					sum += power[r-k]
					n++
				}
				if r+k < bc.Ranges {
					sum += power[r+k]
					n++
				}
			}
			if n == 0 {
				continue
			}
			noise := sum / float64(n)
			thr := noise * alpha
			if power[r] > thr && thr > 0 {
				dets = append(dets, Detection{
					Seq:       bc.Seq,
					Beam:      pb.Beam,
					Bin:       pb.Bin,
					Range:     r,
					Power:     power[r],
					Threshold: thr,
				})
			}
		}
	}
	sort.Slice(dets, func(i, j int) bool {
		a, b := dets[i], dets[j]
		if a.Beam != b.Beam {
			return a.Beam < b.Beam
		}
		if a.Bin != b.Bin {
			return a.Bin < b.Bin
		}
		return a.Range < b.Range
	})
	return dets, nil
}

// ClusterDetections collapses runs of adjacent detections (same beam and
// bin, range gates within spread) into the strongest member, suppressing
// the sidelobe responses around a compressed target peak.
func ClusterDetections(dets []Detection, spread int) []Detection {
	if len(dets) == 0 {
		return nil
	}
	var out []Detection
	best, last := dets[0], dets[0]
	for _, d := range dets[1:] {
		if d.Beam == last.Beam && d.Bin == last.Bin && d.Range-last.Range <= spread {
			if d.Power > best.Power {
				best = d
			}
			last = d
			continue
		}
		out = append(out, best)
		best, last = d, d
	}
	return append(out, best)
}
