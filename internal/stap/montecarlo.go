package stap

import (
	"fmt"
	"math"

	"stapio/internal/radar"
)

// Monte-Carlo detection-performance evaluation: run the full chain over
// many independent noise realisations and score detections against the
// scenario's ground truth, yielding the probability of detection (Pd) and
// the false-alarm rate (Pfa) — the standard way to evaluate a detector.

// MCConfig configures a Monte-Carlo run.
type MCConfig struct {
	// Trials is the number of independent noise realisations.
	Trials int
	// WarmCPIs is how many CPIs each trial processes before the scored
	// one (>= 1 so adaptive weights are trained; the scored CPI is
	// WarmCPIs itself).
	WarmCPIs int
	// BinTol and RangeTol are the scoring tolerances around each target's
	// true Doppler bin and range gate.
	BinTol, RangeTol int
	// Cluster collapses detection runs (ClusterDetections spread) before
	// scoring; <= 0 disables clustering.
	Cluster int
}

// DefaultMCConfig returns a light-weight configuration for tests and
// examples.
func DefaultMCConfig() MCConfig {
	return MCConfig{Trials: 10, WarmCPIs: 1, BinTol: 1, RangeTol: 2, Cluster: 4}
}

// MCStats aggregates Monte-Carlo scoring.
type MCStats struct {
	// Trials and Targets give the experiment size.
	Trials, Targets int
	// Hits counts (trial, target) pairs with at least one detection
	// inside the tolerance box around the truth.
	Hits int
	// FalseAlarms counts clustered detections not attributable to any
	// target.
	FalseAlarms int
	// CellsPerTrial is the number of resolution cells scored per trial.
	CellsPerTrial int
}

// Pd returns the probability of detection.
func (s MCStats) Pd() float64 {
	n := s.Trials * s.Targets
	if n == 0 {
		return 0
	}
	return float64(s.Hits) / float64(n)
}

// Pfa returns the per-cell false-alarm probability.
func (s MCStats) Pfa() float64 {
	n := s.Trials * s.CellsPerTrial
	if n == 0 {
		return 0
	}
	return float64(s.FalseAlarms) / float64(n)
}

// String implements fmt.Stringer.
func (s MCStats) String() string {
	return fmt.Sprintf("Pd=%.2f (%d/%d) Pfa=%.2e (%d alarms over %d cells)",
		s.Pd(), s.Hits, s.Trials*s.Targets, s.Pfa(), s.FalseAlarms, s.Trials*s.CellsPerTrial)
}

// nearestBeam returns the index of the configured beam closest to angle u.
func nearestBeam(p *Params, u float64) int {
	best, bestD := 0, math.Inf(1)
	for i, b := range p.Beams {
		if d := math.Abs(b - u); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// MonteCarlo evaluates the detector on the scenario over cfg.Trials
// independent realisations (the scenario seed is re-derived per trial).
func MonteCarlo(sc *radar.Scenario, p Params, cfg MCConfig) (MCStats, error) {
	if cfg.Trials < 1 {
		return MCStats{}, fmt.Errorf("stap: MonteCarlo needs at least 1 trial")
	}
	if cfg.WarmCPIs < 1 {
		return MCStats{}, fmt.Errorf("stap: MonteCarlo needs at least 1 warm CPI")
	}
	if err := sc.Validate(); err != nil {
		return MCStats{}, err
	}
	if err := p.Validate(); err != nil {
		return MCStats{}, err
	}
	stats := MCStats{
		Trials:        cfg.Trials,
		Targets:       len(sc.Targets),
		CellsPerTrial: len(p.Beams) * p.Bins() * p.Dims.Ranges,
	}
	baseSeed := sc.Seed
	for trial := 0; trial < cfg.Trials; trial++ {
		trialSc := *sc
		trialSc.Seed = baseSeed + int64(trial)*1_000_003
		pr, err := NewProcessor(p)
		if err != nil {
			return MCStats{}, err
		}
		var dets []Detection
		for seq := uint64(0); seq <= uint64(cfg.WarmCPIs); seq++ {
			cb, err := trialSc.Generate(seq)
			if err != nil {
				return MCStats{}, err
			}
			dets, err = pr.Process(cb, seq)
			if err != nil {
				return MCStats{}, err
			}
		}
		if cfg.Cluster > 0 {
			dets = ClusterDetections(dets, cfg.Cluster)
		}
		scored := uint64(cfg.WarmCPIs)
		matched := make([]bool, len(dets))
		for ti := range trialSc.Targets {
			tg := trialSc.Targets[ti]
			beam := nearestBeam(&p, tg.Angle)
			bin := p.BinForDoppler(tg.Doppler)
			gate := trialSc.TargetGate(ti, scored)
			hit := false
			for di, d := range dets {
				if d.Beam == beam &&
					binDist(p.Bins(), d.Bin, bin) <= cfg.BinTol &&
					intAbs(d.Range-gate) <= cfg.RangeTol {
					matched[di] = true
					hit = true
				}
			}
			if hit {
				stats.Hits++
			}
		}
		for di := range dets {
			if !matched[di] {
				stats.FalseAlarms++
			}
		}
	}
	return stats, nil
}

// binDist is the circular distance between Doppler bins.
func binDist(n, a, b int) int {
	d := intAbs(a - b)
	if n-d < d {
		d = n - d
	}
	return d
}

func intAbs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
