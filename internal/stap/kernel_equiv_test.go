package stap

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"stapio/internal/cube"
	"stapio/internal/linalg"
	"stapio/internal/signal"
)

// Equivalence tests for the blocked/batched kernels against plain scalar
// references, on random geometries covering both power-of-two and
// Bluestein Doppler lengths: the tiled, fused-window Doppler filter
// against a per-element windowed DFT; the strip beamformer against
// one-at-a-time conjugated dots; the panel covariance against rank-1
// outer-product accumulation; and the batched pulse compressor against
// the profile-at-a-time path (which must be exact, not just close).

func randCube(rng *rand.Rand, d cube.Dims) *cube.Cube {
	cb := cube.New(d)
	for i := range cb.Data {
		cb.Data[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
	}
	return cb
}

func equivParams(d cube.Dims) Params {
	p := DefaultParams(d)
	p.TrainEasy = min(2*d.Channels, d.Ranges)
	p.TrainHard = min(4*d.Channels, d.Ranges)
	return p
}

// equivGeometries mixes snapshot lengths, Bluestein bin counts (Pulses 16
// -> L 15), and range extents that leave tile and panel remainders.
var equivGeometries = []cube.Dims{
	{Channels: 2, Pulses: 9, Ranges: 21},   // L = 8, power of two
	{Channels: 4, Pulses: 16, Ranges: 53},  // L = 15, Bluestein
	{Channels: 3, Pulses: 33, Ranges: 40},  // L = 32, power of two
	{Channels: 5, Pulses: 12, Ranges: 100}, // L = 11, Bluestein
}

func relErr(got, want complex128) float64 {
	d := got - want
	return math.Hypot(real(d), imag(d)) / math.Max(1, math.Hypot(real(want), imag(want)))
}

func TestDopplerFilterMatchesWindowedDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, dims := range equivGeometries {
		p := equivParams(dims)
		cb := randCube(rng, dims)
		dc, err := DopplerFilter(&p, cb, 0)
		if err != nil {
			t.Fatal(err)
		}
		l := p.Bins()
		k := p.StaggerCount()
		win := signal.Window(p.Window, l)
		col := make([]complex64, dims.Pulses)
		x := make([]complex128, l)
		for r := 0; r < dims.Ranges; r++ {
			for ch := 0; ch < dims.Channels; ch++ {
				cb.PulseColumn(ch, r, col)
				for st := 0; st < k; st++ {
					for i := 0; i < l; i++ {
						x[i] = complex128(col[st+i]) * complex(win[i], 0)
					}
					spec := signal.DFT(x)
					for d := 0; d < l; d++ {
						got := dc.At(d, st, ch, r)
						if e := relErr(got, spec[d]); e > 1e-9 {
							t.Fatalf("%v: bin %d stagger %d ch %d r %d: %v vs DFT %v (rel %g)",
								dims, d, st, ch, r, got, spec[d], e)
						}
					}
				}
			}
		}
	}
}

func TestBeamformMatchesScalarDots(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, dims := range equivGeometries {
		p := equivParams(dims)
		cb := randCube(rng, dims)
		dc, err := DopplerFilter(&p, cb, 0)
		if err != nil {
			t.Fatal(err)
		}
		bc := NewBeamCube(&p)
		for _, set := range [][]int{p.EasyBins(), p.HardBins()} {
			ws, err := ComputeWeights(&p, dc, set, p.IsHard(set[0]))
			if err != nil {
				t.Fatal(err)
			}
			if err := Beamform(&p, dc, ws, set, bc); err != nil {
				t.Fatal(err)
			}
			for _, d := range set {
				dof := p.DoF(d)
				perBeam := ws.For(d)
				for b := range p.Beams {
					prof := bc.Profile(b, d)
					for r := 0; r < dims.Ranges; r++ {
						want := linalg.Dot(perBeam[b], dc.Snapshot(d, r)[:dof])
						if e := relErr(prof[r], want); e > 1e-9 {
							t.Fatalf("%v: bin %d beam %d r %d: %v vs scalar dot %v (rel %g)",
								dims, d, b, r, prof[r], want, e)
						}
					}
				}
			}
		}
	}
}

func TestEstimateCovariancesMatchesRank1(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, dims := range equivGeometries {
		p := equivParams(dims)
		cb := randCube(rng, dims)
		dc, err := DopplerFilter(&p, cb, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, hard := range []bool{false, true} {
			bins := p.EasyBins()
			train := p.TrainEasy
			if hard {
				bins = p.HardBins()
				train = p.TrainHard
			}
			covs, err := EstimateCovariances(&p, dc, bins, hard)
			if err != nil {
				t.Fatal(err)
			}
			gates := trainingGates(dims.Ranges, train)
			inv := 1 / float64(len(gates))
			for i, d := range bins {
				dof := p.DoF(d)
				ref := linalg.NewMatrix(dof, dof)
				for _, g := range gates {
					ref.AccumulateOuter(dc.Snapshot(d, g)[:dof], inv)
				}
				for j := range ref.Data {
					if e := relErr(covs[i].Data[j], ref.Data[j]); e > 1e-9 {
						t.Fatalf("%v hard=%v bin %d: covariance element %d: %v vs rank-1 %v (rel %g)",
							dims, hard, d, j, covs[i].Data[j], ref.Data[j], e)
					}
				}
			}
		}
	}
}

func TestCompressBatchMatchesProfileAtATime(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for _, dims := range equivGeometries {
		p := equivParams(dims)
		bc := NewBeamCube(&p)
		for i := range bc.Data {
			bc.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := &BeamCube{Beams: bc.Beams, Bins: bc.Bins, Ranges: bc.Ranges,
			Data: append([]complex128(nil), bc.Data...)}
		comp := NewCompressor(&p)
		ref := NewCompressor(&p)
		if err := Compress(&p, bc, comp, nil); err != nil {
			t.Fatal(err)
		}
		for _, pb := range AllBeamBins(want.Beams, want.Bins) {
			ref.CompressProfile(want.Profile(pb.Beam, pb.Bin))
		}
		for i := range bc.Data {
			if bc.Data[i] != want.Data[i] {
				t.Fatalf("%v: batched Compress diverges from CompressProfile at %d: %v vs %v",
					dims, i, bc.Data[i], want.Data[i])
			}
		}
	}
}

func TestBeamformWeightLengthErrorBeforeWrite(t *testing.T) {
	// A bad weight vector anywhere in the set must surface as a typed
	// error naming the (bin, beam) pair, and must be caught by the
	// up-front validation pass — before a single output sample lands.
	rng := rand.New(rand.NewSource(36))
	dims := cube.Dims{Channels: 3, Pulses: 16, Ranges: 24}
	p := equivParams(dims)
	cb := randCube(rng, dims)
	dc, err := DopplerFilter(&p, cb, 0)
	if err != nil {
		t.Fatal(err)
	}
	bins := p.EasyBins()
	ws := InitialWeights(&p, bins)
	badBin := bins[len(bins)-1] // last bin: naive per-bin processing would write earlier bins first
	const badBeam = 1
	ws.W[len(bins)-1][badBeam] = ws.W[len(bins)-1][badBeam][:1]
	bc := NewBeamCube(&p)
	err = Beamform(&p, dc, ws, bins, bc)
	var wle *WeightLengthError
	if !errors.As(err, &wle) {
		t.Fatalf("Beamform returned %v, want *WeightLengthError", err)
	}
	if wle.Bin != badBin || wle.Beam != badBeam || wle.Len != 1 || wle.Want != p.DoF(badBin) {
		t.Fatalf("WeightLengthError %+v, want bin %d beam %d len 1 want %d", wle, badBin, badBeam, p.DoF(badBin))
	}
	for i, v := range bc.Data {
		if v != 0 {
			t.Fatalf("Beamform wrote output sample %d before failing validation", i)
		}
	}
	if err := BeamformBand(&p, dc, ws, bins, 0, bc); !errors.As(err, &wle) {
		t.Fatalf("BeamformBand returned %v, want *WeightLengthError", err)
	}
}

func TestDopplerTileDepthInvariance(t *testing.T) {
	// The staging tile only reorders writes; any depth must produce the
	// same bytes. Exercise depth 1 by shrinking the per-call block.
	rng := rand.New(rand.NewSource(35))
	dims := cube.Dims{Channels: 3, Pulses: 16, Ranges: 37}
	p := equivParams(dims)
	cb := randCube(rng, dims)
	whole, err := DopplerFilter(&p, cb, 0)
	if err != nil {
		t.Fatal(err)
	}
	split := NewDopplerCube(&p)
	sc := NewDopplerScratch(&p)
	for lo := 0; lo < dims.Ranges; lo += 3 {
		blk := cube.Block{Lo: lo, Hi: min(lo+3, dims.Ranges)}
		if err := DopplerFilterRanges(&p, cb, blk, split, sc); err != nil {
			t.Fatal(err)
		}
	}
	for i := range whole.Data {
		if whole.Data[i] != split.Data[i] {
			t.Fatalf("split-range Doppler diverges from whole at %d", i)
		}
	}
}
