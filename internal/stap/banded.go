package stap

import (
	"fmt"
	"sort"
	"sync/atomic"

	"stapio/internal/cube"
	"stapio/internal/linalg"
)

// Banded kernels: the external-memory execution mode streams each CPI
// through the Doppler -> weight-training -> beamforming front of the
// chain one range band at a time, so peak residency is O(band) instead
// of O(cube). Every per-range computation of those kernels is local to
// its range gate (the Doppler FFT runs along pulses, covariance training
// subsamples gates, beamforming dots one snapshot), so a banded pass
// reproduces the full-cube kernels bit for bit — the banded determinism
// tests pin this. Pulse compression and CFAR run along ranges and keep
// needing the assembled beam cube; the beam cube is the O(cube) floor of
// the banded mode (see DESIGN.md §14).

// NewDopplerCubeBand allocates a Doppler cube covering band range gates
// instead of the full extent — the banded pipeline's reusable band slab.
func NewDopplerCubeBand(p *Params, band int) *DopplerCube {
	bins := p.Bins()
	sl := p.StaggerCount() * p.Dims.Channels
	return &DopplerCube{
		Bins:     bins,
		Ranges:   band,
		Channels: p.Dims.Channels,
		SnapLen:  sl,
		Data:     make([]complex128, bins*band*sl),
	}
}

// DopplerFilterBand Doppler-filters a band slab: cb holds the range gates
// [lo, lo+band) of a CPI (dims {Channels, Pulses, band}), and out is a
// band-sized Doppler cube (Ranges == band). rb selects the local gates of
// the band to process, so the band still partitions across Doppler
// workers. Bitwise identical to DopplerFilterRanges over the same global
// gates: each gate's pulse column is the same bytes, and the per-column
// window+FFT never looks at neighbouring gates.
func DopplerFilterBand(p *Params, cb *cube.Cube, rb cube.Block, out *DopplerCube, sc *DopplerScratch) error {
	band := cb.Dims.Ranges
	if cb.Dims.Channels != p.Dims.Channels || cb.Dims.Pulses != p.Dims.Pulses {
		return fmt.Errorf("stap: band slab dims %v do not match params dims %v", cb.Dims, p.Dims)
	}
	if rb.Lo < 0 || rb.Hi > band || rb.Lo > rb.Hi {
		return fmt.Errorf("stap: band block %v outside [0,%d]", rb, band)
	}
	l := p.Bins()
	k := p.StaggerCount()
	if out.SnapLen != k*p.Dims.Channels || out.Bins != l || out.Ranges != band {
		return fmt.Errorf("stap: band output cube geometry does not match params")
	}
	if sc == nil {
		sc = NewDopplerScratch(p)
	} else if !sc.fits(p) {
		return fmt.Errorf("stap: doppler scratch geometry does not match params")
	}
	dopplerBody(p, cb, rb, out, sc)
	return nil
}

// CovAccumulator builds the per-bin sample covariances of one CPI from
// band-sized Doppler slabs. The training gates and their weighting are
// exactly EstimateCovariances' (the even fencepost subsample over the
// full range extent, each gate scaled by 1/len(gates)), and the snapshots
// fold in through the same fixed-width panels: each bin buffers incoming
// gates until a global covPanelGates boundary is reached, then flushes one
// blocked Hermitian update. Band boundaries never flush a partial panel —
// the pending snapshots carry across bands — so feeding the bands in
// ascending range order reproduces the full-cube estimate bit for bit.
// Distinct bin blocks touch disjoint matrices and panel buffers, so
// AddBand may run concurrently across bin blocks of the same band.
type CovAccumulator struct {
	p     *Params
	bins  []int
	hard  bool
	gates []int // global training gates, ascending
	inv   float64
	covs  []*linalg.Matrix
	// pend[i] buffers the current panel's packed snapshots for bin i;
	// fill[i] counts how many gates it holds. Because every gate arrives
	// exactly once in ascending order, fill is the global gate index
	// modulo covPanelGates — the panel boundaries are the same global
	// ones EstimateCovariances uses.
	pend [][]complex128
	fill []int
	// added counts (bin, gate) accumulations, so Finish can detect a
	// band that was never fed.
	added atomic.Int64
}

// NewCovAccumulator validates the bin set (every bin must belong to the
// hard or easy set as selected) and allocates zeroed covariance matrices.
func NewCovAccumulator(p *Params, bins []int, hard bool) (*CovAccumulator, error) {
	train := p.TrainEasy
	if hard {
		train = p.TrainHard
	}
	a := &CovAccumulator{
		p:     p,
		bins:  bins,
		hard:  hard,
		gates: trainingGates(p.Dims.Ranges, train),
		covs:  make([]*linalg.Matrix, len(bins)),
		pend:  make([][]complex128, len(bins)),
		fill:  make([]int, len(bins)),
	}
	a.inv = 1 / float64(len(a.gates))
	for i, d := range bins {
		if p.IsHard(d) != hard {
			return nil, fmt.Errorf("stap: bin %d is not in the %s set", d, setName(hard))
		}
		dof := p.DoF(d)
		a.covs[i] = linalg.NewMatrix(dof, dof)
		a.pend[i] = make([]complex128, covPanelGates*dof)
	}
	return a, nil
}

// Reset clears the matrices and pending panels for the next CPI without
// reallocating.
func (a *CovAccumulator) Reset() {
	for _, m := range a.covs {
		for i := range m.Data {
			m.Data[i] = 0
		}
	}
	for i := range a.fill {
		a.fill[i] = 0
	}
	a.added.Store(0)
}

// AddBand folds the training gates covered by a band slab into the
// selected bin block. dc holds global range gates [lo, lo+dc.Ranges);
// bb indexes into the accumulator's bin set. Bands must be fed in
// ascending range order for bit-identical results (the matrices would
// still converge to the same value out of order, but floating-point
// addition would reassociate).
func (a *CovAccumulator) AddBand(dc *DopplerCube, lo int, bb cube.Block) error {
	if dc.Channels != a.p.Dims.Channels || dc.SnapLen != a.p.StaggerCount()*a.p.Dims.Channels {
		return fmt.Errorf("stap: band doppler cube geometry mismatch")
	}
	if bb.Lo < 0 || bb.Hi > len(a.bins) || bb.Lo > bb.Hi {
		return fmt.Errorf("stap: bin block %v outside [0,%d]", bb, len(a.bins))
	}
	hi := lo + dc.Ranges
	// The band's training gates: gates is ascending, so the sub-slice
	// [first gate >= lo, first gate >= hi) covers exactly [lo, hi).
	g0 := sort.SearchInts(a.gates, lo)
	g1 := sort.SearchInts(a.gates, hi)
	if g0 == g1 {
		return nil
	}
	for i := bb.Lo; i < bb.Hi; i++ {
		d := a.bins[i]
		dof := a.p.DoF(d)
		pend := a.pend[i]
		for _, g := range a.gates[g0:g1] {
			snap := dc.Snapshot(d, g-lo)[:dof]
			copy(pend[a.fill[i]*dof:(a.fill[i]+1)*dof], snap)
			a.fill[i]++
			if a.fill[i] == covPanelGates {
				a.covs[i].AccumulatePanel(pend, covPanelGates, a.inv)
				a.fill[i] = 0
			}
		}
	}
	a.added.Add(int64((g1 - g0) * (bb.Hi - bb.Lo)))
	return nil
}

// Finish returns the accumulated covariances, verifying every (bin,
// gate) pair was fed exactly once. The matrices alias the accumulator's
// state: call Reset before reusing it for the next CPI, and note that
// CovarianceSmoother.Update with a positive lambda copies them, while
// lambda 0 aliases them — banded executors with smoothing off must solve
// weights before Reset.
func (a *CovAccumulator) Finish() ([]*linalg.Matrix, error) {
	want := int64(len(a.gates) * len(a.bins))
	if got := a.added.Load(); got != want {
		return nil, fmt.Errorf("stap: covariance accumulation saw %d of %d (bin, gate) pairs — bands missing or double-fed", got, want)
	}
	// Flush the tail panels — the same final partial panel the full-cube
	// estimator folds in after its last full boundary.
	for i, f := range a.fill {
		if f > 0 {
			a.covs[i].AccumulatePanel(a.pend[i], f, a.inv)
			a.fill[i] = 0
		}
	}
	return a.covs, nil
}

// BeamformBand applies the weight set to a band slab, writing the global
// range gates [lo, lo+dc.Ranges) of each (beam, bin) profile. Disjoint
// bin sets and disjoint bands touch disjoint output ranges, so the easy
// and hard tasks — and successive bands — can fill the one beam cube
// concurrently. It runs the same panel kernel as Beamform over the band's
// snapshot panel, so each output sample is the same single dot product,
// bit for bit. Weight lengths are validated for every (bin, beam) pair
// before the first sample is written.
func BeamformBand(p *Params, dc *DopplerCube, ws *WeightSet, bins []int, lo int, out *BeamCube) error {
	if out.Bins != p.Bins() || out.Ranges != p.Dims.Ranges || out.Beams != len(p.Beams) {
		return fmt.Errorf("stap: beam cube geometry mismatch")
	}
	if lo < 0 || lo+dc.Ranges > p.Dims.Ranges {
		return fmt.Errorf("stap: band [%d,%d) outside range extent %d", lo, lo+dc.Ranges, p.Dims.Ranges)
	}
	if err := validateWeights(p, ws, bins); err != nil {
		return err
	}
	for _, d := range bins {
		beamformBin(dc, ws.For(d), d, p.DoF(d), lo, out)
	}
	return nil
}

// CopyBand copies the range gates [lo, lo+dst.Dims.Ranges) of src into
// the band slab dst — the in-memory reference implementation of a banded
// read, used by generator-backed band sources and the banded tests. The
// cube layout is range-minor, so each (channel, pulse) row contributes
// one contiguous span.
func CopyBand(dst, src *cube.Cube, lo int) error {
	band := dst.Dims.Ranges
	if dst.Dims.Channels != src.Dims.Channels || dst.Dims.Pulses != src.Dims.Pulses {
		return fmt.Errorf("stap: band slab dims %v do not match cube dims %v", dst.Dims, src.Dims)
	}
	if lo < 0 || lo+band > src.Dims.Ranges {
		return fmt.Errorf("stap: band [%d,%d) outside range extent %d", lo, lo+band, src.Dims.Ranges)
	}
	rows := src.Dims.Channels * src.Dims.Pulses
	for row := 0; row < rows; row++ {
		so := row*src.Dims.Ranges + lo
		do := row * band
		copy(dst.Data[do:do+band], src.Data[so:so+band])
	}
	return nil
}
