package stap

import (
	"math"
	"math/cmplx"
	"testing"

	"stapio/internal/cube"
	"stapio/internal/radar"
	"stapio/internal/signal"
)

// toneCube builds a cube containing a single space-time tone at angle u,
// Doppler fd, constant over all range gates.
func toneCube(d cube.Dims, u, fd float64) *cube.Cube {
	cb := cube.New(d)
	sp := signal.SteeringVector(d.Channels, u)
	tm := signal.DopplerSteeringVector(d.Pulses, fd)
	for c := 0; c < d.Channels; c++ {
		for p := 0; p < d.Pulses; p++ {
			v := complex64(sp[c] * tm[p])
			row := cb.PulseRow(c, p)
			for r := range row {
				row[r] = v
			}
		}
	}
	return cb
}

func TestDopplerFilterTonePeaksAtBin(t *testing.T) {
	p := DefaultParams(testDims())
	p.Window = signal.WindowRect
	fd := p.BinDoppler(4) // exactly on bin 4
	cb := toneCube(p.Dims, 0, fd)
	dc, err := DopplerFilter(&p, cb, 9)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Seq != 9 {
		t.Errorf("Seq = %d, want 9", dc.Seq)
	}
	// Energy at (bin 4, stagger 0, ch 0) must be L; other bins ~0.
	l := p.Bins()
	for d := 0; d < l; d++ {
		a := cmplx.Abs(dc.At(d, 0, 0, 10))
		if d == 4 {
			if math.Abs(a-float64(l)) > 1e-6 {
				t.Errorf("on-bin magnitude %g, want %d", a, l)
			}
		} else if a > 1e-6 {
			t.Errorf("off-bin %d magnitude %g, want 0", d, a)
		}
	}
	// Stagger phase relation: stagger1 = stagger0 * e^{i 2 pi fd} for an
	// on-bin tone.
	rot := cmplx.Exp(complex(0, 2*math.Pi*fd))
	for c := 0; c < p.Dims.Channels; c++ {
		s0 := dc.At(4, 0, c, 3)
		s1 := dc.At(4, 1, c, 3)
		if cmplx.Abs(s1-s0*rot) > 1e-6 {
			t.Errorf("stagger phase mismatch at channel %d: %v vs %v", c, s1, s0*rot)
		}
	}
}

func TestDopplerFilterSpatialPhasePreserved(t *testing.T) {
	p := DefaultParams(testDims())
	p.Window = signal.WindowRect
	u := 0.5
	cb := toneCube(p.Dims, u, p.BinDoppler(2))
	dc, err := DopplerFilter(&p, cb, 0)
	if err != nil {
		t.Fatal(err)
	}
	sp := signal.SteeringVector(p.Dims.Channels, u)
	base := dc.At(2, 0, 0, 0)
	for c := 1; c < p.Dims.Channels; c++ {
		want := base * sp[c] / sp[0]
		if cmplx.Abs(dc.At(2, 0, c, 0)-want) > 1e-6 {
			t.Errorf("spatial phase broken at channel %d", c)
		}
	}
}

func TestDopplerFilterRangesBlocksCompose(t *testing.T) {
	// Filtering two half-blocks must equal filtering the whole extent.
	s := radar.SmallTestScenario()
	cb, err := s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(s.Dims)
	whole, err := DopplerFilter(&p, cb, 0)
	if err != nil {
		t.Fatal(err)
	}
	parts := NewDopplerCube(&p)
	sc := NewDopplerScratch(&p)
	for _, blk := range cube.Split(p.Dims.Ranges, 3) {
		if err := DopplerFilterRanges(&p, cb, blk, parts, sc); err != nil {
			t.Fatal(err)
		}
	}
	for i := range whole.Data {
		if cmplx.Abs(whole.Data[i]-parts.Data[i]) > 1e-9 {
			t.Fatalf("block composition differs at %d", i)
		}
	}
}

func TestDopplerFilterErrors(t *testing.T) {
	p := DefaultParams(testDims())
	wrong := cube.New(cube.Dims{Channels: 2, Pulses: 4, Ranges: 8})
	if _, err := DopplerFilter(&p, wrong, 0); err == nil {
		t.Error("expected dims mismatch error")
	}
	cb := cube.New(p.Dims)
	out := NewDopplerCube(&p)
	if err := DopplerFilterRanges(&p, cb, cube.Block{Lo: -1, Hi: 4}, out, nil); err == nil {
		t.Error("expected block range error")
	}
	if err := DopplerFilterRanges(&p, cb, cube.Block{Lo: 0, Hi: p.Dims.Ranges + 1}, out, nil); err == nil {
		t.Error("expected block range error (hi)")
	}
	wrongScratch := NewDopplerScratch(&p)
	bigger := p
	bigger.Staggers = p.StaggerCount() + 1
	if err := DopplerFilterRanges(&bigger, cube.New(bigger.Dims), cube.Block{Lo: 0, Hi: 1}, NewDopplerCube(&bigger), wrongScratch); err == nil {
		t.Error("expected scratch geometry error")
	}
}
