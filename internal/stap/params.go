// Package stap implements the signal-processing tasks of the modified
// PRI-staggered post-Doppler STAP algorithm that the parallel pipeline
// executes: Doppler filter processing, easy and hard adaptive weight
// computation, easy and hard beamforming, pulse compression, and CFAR
// detection.
//
// # Algorithm outline
//
// Each CPI arrives as a data cube of (Channels x Pulses x Ranges) complex
// samples. Doppler filter processing forms, for every channel and range
// gate, two PRI-staggered Doppler spectra: stagger 0 transforms pulses
// [0, P-1), stagger 1 transforms pulses [1, P). Both have length L = P-1,
// so there are L Doppler bins. For Doppler bin d the space-time snapshot at
// range gate r stacks the per-channel outputs of the staggers.
//
// Doppler bins whose normalised Doppler lies inside the clutter notch are
// "hard": their adaptive problem uses both staggers (2C degrees of freedom)
// and a large training set. The remaining "easy" bins use a single stagger
// (C degrees of freedom) and light training. Weight computation estimates a
// sample covariance from training gates of the *previous* CPI (the paper's
// temporal data dependency) and solves R w = t per (bin, beam) steering
// vector. Beamforming applies w^H to every range snapshot, producing a
// (Beams x Bins x Ranges) detection cube; pulse compression correlates each
// range profile with the transmitted chirp replica, and cell-averaging CFAR
// emits detection reports.
package stap

import (
	"fmt"
	"math"
	"math/cmplx"

	"stapio/internal/cube"
	"stapio/internal/signal"
)

// Params configures the STAP processing chain.
type Params struct {
	Dims cube.Dims
	// Beams holds the normalised steering angles u = sin(theta) of the
	// receive beams formed by beamforming.
	Beams []float64
	// Window tapers the pulse dimension before Doppler filtering.
	Window signal.WindowKind
	// ClutterNotch is the half-width, in normalised Doppler (cycles/PRI),
	// of the band around zero Doppler whose bins are processed as "hard"
	// (clutter-contaminated). Bins outside are "easy".
	ClutterNotch float64
	// TrainEasy and TrainHard are the number of training range gates used
	// for the easy and hard covariance estimates.
	TrainEasy, TrainHard int
	// DiagonalLoad is the diagonal loading added to covariance estimates,
	// as a fraction of the average diagonal power.
	DiagonalLoad float64
	// Forgetting, in [0, 1), exponentially smooths the covariance
	// estimates across CPIs (R_k = f*R_{k-1} + (1-f)*Rhat_k); 0 disables
	// smoothing (per-CPI SMI, the paper's behaviour).
	Forgetting float64
	// Staggers is the number of PRI-staggered sub-CPIs (the paper's
	// modified algorithm uses 2; more staggers give the hard bins more
	// adaptive degrees of freedom at higher weight-computation cost).
	// Zero is treated as DefaultStaggers.
	Staggers int
	// PulseLen and Bandwidth describe the transmitted LFM pulse whose
	// matched filter pulse compression applies.
	PulseLen  int
	Bandwidth float64
	// CFAR configuration.
	CFAR CFARParams
}

// CFARParams configures CFAR detection along range.
type CFARParams struct {
	// Kind selects the noise estimator (CA, GOCA, SOCA, OS); the zero
	// value is classic cell averaging.
	Kind CFARKind
	// Guard is the number of guard cells on each side of the cell under
	// test.
	Guard int
	// Window is the number of averaging cells on each side beyond the
	// guards.
	Window int
	// ThresholdDB is the detection threshold over the estimated noise
	// level, in dB.
	ThresholdDB int
}

// DefaultParams returns processing parameters for dims with three beams
// and moderate training, suitable for tests and the examples.
func DefaultParams(d cube.Dims) Params {
	return Params{
		Dims:         d,
		Beams:        []float64{-0.5, 0, 0.5},
		Window:       signal.WindowHann,
		ClutterNotch: 0.1,
		TrainEasy:    max(2*d.Channels, 8),
		TrainHard:    max(4*d.Channels, 16),
		DiagonalLoad: 0.05,
		PulseLen:     max(d.Ranges/16, 1),
		Bandwidth:    0.8,
		CFAR:         CFARParams{Guard: 2, Window: 8, ThresholdDB: 12},
	}
}

// Validate checks parameter consistency.
func (p *Params) Validate() error {
	if !p.Dims.Valid() {
		return fmt.Errorf("stap: invalid dims %v", p.Dims)
	}
	if p.Staggers < 0 {
		return fmt.Errorf("stap: negative stagger count %d", p.Staggers)
	}
	if k := p.StaggerCount(); p.Dims.Pulses < k+1 {
		return fmt.Errorf("stap: %d staggers need at least %d pulses, have %d",
			k, k+1, p.Dims.Pulses)
	}
	if len(p.Beams) == 0 {
		return fmt.Errorf("stap: no beams configured")
	}
	for i, u := range p.Beams {
		if u < -1 || u > 1 {
			return fmt.Errorf("stap: beam %d angle %v outside [-1,1]", i, u)
		}
	}
	if p.ClutterNotch < 0 || p.ClutterNotch > 0.5 {
		return fmt.Errorf("stap: clutter notch %v outside [0, 0.5]", p.ClutterNotch)
	}
	if p.TrainEasy < 1 || p.TrainHard < 1 {
		return fmt.Errorf("stap: training sizes must be >= 1 (easy %d, hard %d)", p.TrainEasy, p.TrainHard)
	}
	if p.TrainEasy > p.Dims.Ranges || p.TrainHard > p.Dims.Ranges {
		return fmt.Errorf("stap: training sizes (%d, %d) exceed range gates %d",
			p.TrainEasy, p.TrainHard, p.Dims.Ranges)
	}
	if p.DiagonalLoad < 0 {
		return fmt.Errorf("stap: negative diagonal loading %v", p.DiagonalLoad)
	}
	if p.Forgetting < 0 || p.Forgetting >= 1 {
		return fmt.Errorf("stap: forgetting factor %v outside [0, 1)", p.Forgetting)
	}
	if p.PulseLen < 1 || p.PulseLen > p.Dims.Ranges {
		return fmt.Errorf("stap: pulse length %d outside [1, %d]", p.PulseLen, p.Dims.Ranges)
	}
	if p.Bandwidth <= 0 || p.Bandwidth > 1 {
		return fmt.Errorf("stap: bandwidth %v outside (0, 1]", p.Bandwidth)
	}
	if p.CFAR.Guard < 0 || p.CFAR.Window < 1 {
		return fmt.Errorf("stap: invalid CFAR geometry guard=%d window=%d", p.CFAR.Guard, p.CFAR.Window)
	}
	if 2*(p.CFAR.Guard+p.CFAR.Window)+1 > p.Dims.Ranges {
		return fmt.Errorf("stap: CFAR window spans %d cells, more than %d range gates",
			2*(p.CFAR.Guard+p.CFAR.Window)+1, p.Dims.Ranges)
	}
	return nil
}

// DefaultStaggers is the paper's stagger count (the modified PRI-staggered
// post-Doppler algorithm stacks two sub-CPIs).
const DefaultStaggers = 2

// StaggerCount returns the effective number of staggers (>= 1), treating
// the zero value as DefaultStaggers.
func (p *Params) StaggerCount() int {
	if p.Staggers < 1 {
		return DefaultStaggers
	}
	return p.Staggers
}

// Bins returns the number of Doppler bins: the staggered sub-CPI length
// P - K + 1 for K staggers.
func (p *Params) Bins() int { return p.Dims.Pulses - p.StaggerCount() + 1 }

// BinDoppler returns the normalised Doppler frequency of bin d in
// [-0.5, 0.5).
func (p *Params) BinDoppler(d int) float64 {
	l := p.Bins()
	f := float64(d) / float64(l)
	if f >= 0.5 {
		f -= 1
	}
	return f
}

// BinForDoppler returns the Doppler bin whose centre frequency is closest
// to fd (cycles/PRI, in [-0.5, 0.5)).
func (p *Params) BinForDoppler(fd float64) int {
	l := p.Bins()
	d := int(math.Round(fd*float64(l)+float64(l))) % l
	return d
}

// IsHard reports whether Doppler bin d is in the hard (clutter) set.
func (p *Params) IsHard(d int) bool {
	return math.Abs(p.BinDoppler(d)) <= p.ClutterNotch
}

// EasyBins and HardBins return the bin index sets.
func (p *Params) EasyBins() []int { return p.binsWhere(false) }

// HardBins returns the hard (clutter-notch) bin indices.
func (p *Params) HardBins() []int { return p.binsWhere(true) }

func (p *Params) binsWhere(hard bool) []int {
	var out []int
	for d := 0; d < p.Bins(); d++ {
		if p.IsHard(d) == hard {
			out = append(out, d)
		}
	}
	return out
}

// DoF returns the adaptive degrees of freedom for bin d: Channels for easy
// bins, StaggerCount()*Channels for hard bins.
func (p *Params) DoF(d int) int {
	if p.IsHard(d) {
		return p.StaggerCount() * p.Dims.Channels
	}
	return p.Dims.Channels
}

// Steering returns the space(-time) steering vector for beam angle u at
// Doppler bin d, with length DoF(d). For hard bins stagger k is
// phase-advanced by k PRIs of the bin's Doppler (the target phase
// progression between staggered sub-CPIs).
func (p *Params) Steering(u float64, d int) []complex128 {
	s := signal.SteeringVector(p.Dims.Channels, u)
	if !p.IsHard(d) {
		return s
	}
	k := p.StaggerCount()
	out := make([]complex128, k*len(s))
	rot := cmplx.Exp(complex(0, 2*math.Pi*p.BinDoppler(d)))
	phase := complex(1, 0)
	for st := 0; st < k; st++ {
		for i, v := range s {
			out[st*len(s)+i] = v * phase
		}
		phase *= rot
	}
	return out
}

// Replica returns the matched-filter kernel used by pulse compression.
func (p *Params) Replica() []complex128 {
	return signal.MatchedFilter(signal.LFMChirp(p.PulseLen, p.Bandwidth))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
