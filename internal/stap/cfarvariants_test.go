package stap

import (
	"math/rand"
	"testing"
)

// noisyBeamCube fills a beam cube with exponential (power-domain) noise
// plus optional strong cells.
func noisyBeamCube(t *testing.T, p *Params, seed int64) *BeamCube {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bc := NewBeamCube(p)
	for i := range bc.Data {
		// Complex Gaussian with unit power.
		bc.Data[i] = complex(rng.NormFloat64()/1.4142, rng.NormFloat64()/1.4142)
	}
	return bc
}

func injectPoint(bc *BeamCube, beam, bin, r int, amp float64) {
	bc.Profile(beam, bin)[r] = complex(amp, 0)
}

func TestCFARVariantsDetectIsolatedTarget(t *testing.T) {
	p := DefaultParams(testDims())
	for _, kind := range []CFARKind{CFARCellAveraging, CFARGreatestOf, CFARSmallestOf, CFAROrderedStatistic} {
		bc := noisyBeamCube(t, &p, 42)
		injectPoint(bc, 1, 2, 30, 100) // 40 dB point
		dets, err := CFARWith(&p, kind, bc, nil)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		found := false
		for _, d := range dets {
			if d.Beam == 1 && d.Bin == 2 && d.Range == 30 {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: isolated 40 dB target not detected", kind)
		}
	}
}

func TestCFARVariantFalseAlarmRatesComparable(t *testing.T) {
	// On pure noise, every variant's false-alarm count should be small
	// and GOCA must not exceed CA (its threshold is never lower).
	p := DefaultParams(testDims())
	p.CFAR.ThresholdDB = 13
	counts := map[CFARKind]int{}
	for _, kind := range []CFARKind{CFARCellAveraging, CFARGreatestOf, CFARSmallestOf, CFAROrderedStatistic} {
		total := 0
		for seed := int64(0); seed < 5; seed++ {
			bc := noisyBeamCube(t, &p, seed)
			dets, err := CFARWith(&p, kind, bc, nil)
			if err != nil {
				t.Fatal(err)
			}
			total += len(dets)
		}
		counts[kind] = total
		cells := 5 * len(p.Beams) * p.Bins() * p.Dims.Ranges
		if total > cells/20 {
			t.Errorf("%v: %d false alarms out of %d cells", kind, total, cells)
		}
	}
	if counts[CFARGreatestOf] > counts[CFARCellAveraging] {
		t.Errorf("GOCA (%d) should not out-alarm CA (%d)", counts[CFARGreatestOf], counts[CFARCellAveraging])
	}
	if counts[CFARSmallestOf] < counts[CFARCellAveraging] {
		t.Errorf("SOCA (%d) should not under-alarm CA (%d)", counts[CFARSmallestOf], counts[CFARCellAveraging])
	}
	t.Logf("false alarms: CA=%d GOCA=%d SOCA=%d OS=%d",
		counts[CFARCellAveraging], counts[CFARGreatestOf], counts[CFARSmallestOf], counts[CFAROrderedStatistic])
}

func TestOSCFARResistsInterferingTargets(t *testing.T) {
	// Two closely spaced strong targets: CA-CFAR's reference mean is
	// inflated by the neighbour (target masking); OS-CFAR must detect
	// both.
	p := DefaultParams(testDims())
	p.CFAR.ThresholdDB = 12
	build := func() *BeamCube {
		bc := noisyBeamCube(t, &p, 7)
		injectPoint(bc, 0, 1, 30, 30)
		injectPoint(bc, 0, 1, 36, 30) // inside the other's reference window
		return bc
	}
	osDets, err := CFARWith(&p, CFAROrderedStatistic, build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	caDets, err := CFARWith(&p, CFARCellAveraging, build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	hits := func(dets []Detection) int {
		n := 0
		for _, d := range dets {
			if d.Beam == 0 && d.Bin == 1 && (d.Range == 30 || d.Range == 36) {
				n++
			}
		}
		return n
	}
	if got := hits(osDets); got != 2 {
		t.Errorf("OS-CFAR detected %d of 2 interfering targets", got)
	}
	if hits(osDets) < hits(caDets) {
		t.Errorf("OS-CFAR (%d) should never trail CA (%d) with interferers", hits(osDets), hits(caDets))
	}
}

func TestGOCASuppressesClutterEdgeFalseAlarms(t *testing.T) {
	// A step in the noise floor (clutter edge): cells just before the
	// step see a mixed reference window. GOCA uses the greater half and
	// must produce no more edge false alarms than SOCA (which uses the
	// lesser half).
	p := DefaultParams(testDims())
	p.CFAR.ThresholdDB = 10
	build := func(seed int64) *BeamCube {
		rng := rand.New(rand.NewSource(seed))
		bc := NewBeamCube(&p)
		for b := 0; b < bc.Beams; b++ {
			for d := 0; d < bc.Bins; d++ {
				prof := bc.Profile(b, d)
				for r := range prof {
					sigma := 0.7071
					if r >= len(prof)/2 {
						sigma *= 10 // 20 dB clutter step
					}
					prof[r] = complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
				}
			}
		}
		return bc
	}
	edgeAlarms := func(kind CFARKind) int {
		total := 0
		for seed := int64(0); seed < 4; seed++ {
			dets, err := CFARWith(&p, kind, build(seed), nil)
			if err != nil {
				t.Fatal(err)
			}
			mid := p.Dims.Ranges / 2
			for _, d := range dets {
				// Alarms in the low-noise region near the edge are the
				// clutter-edge artefact.
				if d.Range < mid && d.Range >= mid-(p.CFAR.Guard+p.CFAR.Window) {
					total++
				}
			}
		}
		return total
	}
	goca := edgeAlarms(CFARGreatestOf)
	soca := edgeAlarms(CFARSmallestOf)
	if goca > soca {
		t.Errorf("GOCA edge alarms (%d) exceed SOCA (%d)", goca, soca)
	}
	t.Logf("clutter-edge alarms: GOCA=%d SOCA=%d", goca, soca)
}

func TestCFARWithErrors(t *testing.T) {
	p := DefaultParams(testDims())
	bc := NewBeamCube(&p)
	if _, err := CFARWith(&p, CFARGreatestOf, bc, []BeamBin{{Beam: -1}}); err == nil {
		t.Error("expected pair range error")
	}
	if _, err := CFARWith(&p, CFARKind(99), bc, nil); err == nil {
		t.Error("expected unknown-kind error")
	}
	if CFARKind(99).String() == "" || CFAROrderedStatistic.String() != "OS" {
		t.Error("CFARKind.String misbehaves")
	}
}
