package stap

import (
	"math"
	"math/cmplx"
	"testing"

	"stapio/internal/linalg"
	"stapio/internal/radar"
)

func filteredTestCube(t *testing.T, seed int64) (*Params, *DopplerCube) {
	t.Helper()
	s := radar.SmallTestScenario()
	s.Seed = seed
	cb, err := s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(s.Dims)
	dc, err := DopplerFilter(&p, cb, 5)
	if err != nil {
		t.Fatal(err)
	}
	return &p, dc
}

func TestComputeWeightsShapes(t *testing.T) {
	p, dc := filteredTestCube(t, 1)
	for _, hard := range []bool{false, true} {
		bins := p.EasyBins()
		if hard {
			bins = p.HardBins()
		}
		ws, err := ComputeWeights(p, dc, bins, hard)
		if err != nil {
			t.Fatal(err)
		}
		if ws.Seq != dc.Seq {
			t.Errorf("Seq = %d, want %d", ws.Seq, dc.Seq)
		}
		if len(ws.W) != len(bins) {
			t.Fatalf("weights for %d bins, want %d", len(ws.W), len(bins))
		}
		for i, d := range bins {
			perBeam := ws.W[i]
			if len(perBeam) != len(p.Beams) {
				t.Fatalf("bin %d: %d beams, want %d", d, len(perBeam), len(p.Beams))
			}
			for b, w := range perBeam {
				if len(w) != p.DoF(d) {
					t.Errorf("bin %d beam %d: len %d, want DoF %d", d, b, len(w), p.DoF(d))
				}
			}
		}
		// Lookup.
		if ws.For(bins[0]) == nil {
			t.Error("For(first bin) = nil")
		}
		if ws.For(-1) != nil {
			t.Error("For(-1) should be nil")
		}
	}
}

func TestComputeWeightsDistortionless(t *testing.T) {
	// MVDR normalisation: t^H w = 1 for every (bin, beam).
	p, dc := filteredTestCube(t, 2)
	ws, err := ComputeWeights(p, dc, p.EasyBins(), false)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range ws.Bins {
		for b, u := range p.Beams {
			tv := p.Steering(u, d)
			g := linalg.Dot(tv, ws.W[i][b])
			if cmplx.Abs(g-1) > 1e-9 {
				t.Errorf("bin %d beam %d: steering gain %v, want 1", d, b, g)
			}
		}
	}
}

func TestComputeWeightsWrongSet(t *testing.T) {
	p, dc := filteredTestCube(t, 3)
	if _, err := ComputeWeights(p, dc, p.EasyBins(), true); err == nil {
		t.Error("expected error passing easy bins as hard")
	}
	other := DefaultParams(testDims())
	other.Dims.Ranges = 32
	if _, err := ComputeWeights(&other, dc, other.EasyBins(), false); err == nil {
		t.Error("expected geometry mismatch error")
	}
}

func TestInitialWeightsUnitGain(t *testing.T) {
	p := DefaultParams(testDims())
	bins := p.HardBins()
	ws := InitialWeights(&p, bins)
	for i, d := range bins {
		for b, u := range p.Beams {
			tv := p.Steering(u, d)
			g := linalg.Dot(tv, ws.W[i][b])
			if cmplx.Abs(g-1) > 1e-9 {
				t.Errorf("bin %d beam %d: gain %v, want 1", d, b, g)
			}
		}
	}
}

func TestAdaptiveWeightsSuppressClutter(t *testing.T) {
	// With a strong clutter ridge, adaptive hard-bin weights must yield a
	// much lower output power on training data than the non-adaptive
	// (conventional) weights: the SINR improvement that motivates STAP.
	s := radar.SmallTestScenario()
	s.Targets = nil
	s.Clutter = radar.Clutter{Patches: 12, CNR: 40, Beta: 1}
	cb, err := s.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(s.Dims)
	p.TrainHard = 48
	dc, err := DopplerFilter(&p, cb, 0)
	if err != nil {
		t.Fatal(err)
	}
	hard := p.HardBins()
	adaptive, err := ComputeWeights(&p, dc, hard, true)
	if err != nil {
		t.Fatal(err)
	}
	conventional := InitialWeights(&p, hard)

	outputPower := func(ws *WeightSet) float64 {
		var sum float64
		var n int
		for i, d := range ws.Bins {
			dof := p.DoF(d)
			for b := range p.Beams {
				w := ws.W[i][b]
				for r := 0; r < dc.Ranges; r++ {
					y := linalg.Dot(w, dc.Snapshot(d, r)[:dof])
					sum += real(y)*real(y) + imag(y)*imag(y)
					n++
				}
			}
		}
		return sum / float64(n)
	}
	pa := outputPower(adaptive)
	pc := outputPower(conventional)
	if pa >= pc {
		t.Fatalf("adaptive output power %g not below conventional %g", pa, pc)
	}
	gain := 10 * math.Log10(pc/pa)
	if gain < 3 {
		t.Errorf("clutter suppression only %.1f dB, want >= 3 dB", gain)
	}
	t.Logf("adaptive clutter suppression: %.1f dB", gain)
}

func TestTrainingGates(t *testing.T) {
	g := trainingGates(64, 8)
	if len(g) != 8 {
		t.Fatalf("len = %d", len(g))
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Errorf("gates not strictly increasing: %v", g)
		}
	}
	if g[len(g)-1] >= 64 {
		t.Errorf("gate out of range: %v", g)
	}
	// Clamp when k > ranges.
	if got := trainingGates(4, 100); len(got) != 4 {
		t.Errorf("clamped len = %d, want 4", len(got))
	}
}
