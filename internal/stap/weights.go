package stap

import (
	"fmt"

	"stapio/internal/linalg"
)

// WeightSet holds the adaptive weight vectors for a set of Doppler bins.
// W[i][b] is the weight vector (length DoF of the bin) for the i-th bin of
// Bins and beam b.
type WeightSet struct {
	// Bins lists the Doppler bin indices this set covers, in ascending
	// order (either the easy or the hard set).
	Bins []int
	// W is indexed [position-in-Bins][beam][dof].
	W [][][]complex128
	// Seq is the CPI sequence number of the Doppler data the weights were
	// trained on; the pipeline applies weights trained on CPI k-1 to the
	// data of CPI k (temporal data dependency).
	Seq uint64
}

// lookup returns the position of bin d in ws.Bins, or -1.
func (ws *WeightSet) lookup(d int) int {
	lo, hi := 0, len(ws.Bins)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case ws.Bins[mid] == d:
			return mid
		case ws.Bins[mid] < d:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return -1
}

// For returns the weight vectors (per beam) for Doppler bin d, or nil if
// the set does not cover d.
func (ws *WeightSet) For(d int) [][]complex128 {
	i := ws.lookup(d)
	if i < 0 {
		return nil
	}
	return ws.W[i]
}

// trainingGates returns k training range gates spread evenly across the
// range extent, excluding nothing (the classic "fencepost" subsample). The
// paper's training strategy details are not given; an even subsample keeps
// the estimate full-rank without favouring any range interval.
func trainingGates(ranges, k int) []int {
	if k > ranges {
		k = ranges
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = i * ranges / k
	}
	return out
}

// covPanelGates is the fixed width, in training gates, of the snapshot
// panels fed to linalg.AccumulatePanel. It is part of the covariance
// accumulation-order contract: panels cover the global training-gate index
// ranges [0,16), [16,32), ... regardless of how the gates arrive, so the
// full-cube estimator and the banded accumulator — which buffers partial
// panels across band boundaries — produce bit-identical matrices. The
// value only trades scratch size against update batching; any fixed value
// is deterministic.
const covPanelGates = 16

// EstimateCovariances returns the (unloaded) sample covariance estimate
// for each listed Doppler bin from the training gates of dc. hard selects
// the snapshot length (full DoF with TrainHard gates vs first-stagger with
// TrainEasy gates). Snapshots are packed into fixed-width panels and
// folded in with the blocked Hermitian update (linalg.AccumulatePanel)
// instead of one rank-1 update per gate.
func EstimateCovariances(p *Params, dc *DopplerCube, bins []int, hard bool) ([]*linalg.Matrix, error) {
	if dc.Ranges != p.Dims.Ranges || dc.Channels != p.Dims.Channels {
		return nil, fmt.Errorf("stap: doppler cube geometry mismatch")
	}
	train := p.TrainEasy
	if hard {
		train = p.TrainHard
	}
	gates := trainingGates(dc.Ranges, train)
	inv := 1 / float64(len(gates))
	covs := make([]*linalg.Matrix, len(bins))
	var panel []complex128
	for i, d := range bins {
		if p.IsHard(d) != hard {
			return nil, fmt.Errorf("stap: bin %d is not in the %s set", d, setName(hard))
		}
		dof := p.DoF(d)
		if len(panel) < covPanelGates*dof {
			panel = make([]complex128, covPanelGates*dof)
		}
		r := linalg.NewMatrix(dof, dof)
		for g0 := 0; g0 < len(gates); g0 += covPanelGates {
			g1 := min(g0+covPanelGates, len(gates))
			for t, g := range gates[g0:g1] {
				copy(panel[t*dof:(t+1)*dof], dc.Snapshot(d, g)[:dof])
			}
			r.AccumulatePanel(panel, g1-g0, inv)
		}
		covs[i] = r
	}
	return covs, nil
}

// SolveWeights turns per-bin covariance estimates into MVDR weights:
// diagonal loading, one Cholesky per bin, one pair of triangular solves
// per beam, unit-gain normalisation toward the steering direction.
func SolveWeights(p *Params, covs []*linalg.Matrix, bins []int, seq uint64) (*WeightSet, error) {
	if len(covs) != len(bins) {
		return nil, fmt.Errorf("stap: %d covariances for %d bins", len(covs), len(bins))
	}
	ws := &WeightSet{Bins: append([]int(nil), bins...), W: make([][][]complex128, len(bins)), Seq: seq}
	for i, d := range bins {
		dof := p.DoF(d)
		if covs[i].Rows != dof || covs[i].Cols != dof {
			return nil, fmt.Errorf("stap: covariance for bin %d is %dx%d, want %d",
				d, covs[i].Rows, covs[i].Cols, dof)
		}
		// Diagonal loading relative to the average diagonal power keeps
		// the estimate well-conditioned when training is light. Work on a
		// copy so the caller's (possibly smoothed) estimate is preserved.
		r := covs[i].Clone()
		var trace float64
		for k := 0; k < dof; k++ {
			trace += real(r.At(k, k))
		}
		load := p.DiagonalLoad*trace/float64(dof) + 1e-12
		r.AddScaledIdentity(complex(load, 0))

		l, err := linalg.Cholesky(r)
		if err != nil {
			return nil, fmt.Errorf("stap: covariance for bin %d: %w", d, err)
		}
		perBeam := make([][]complex128, len(p.Beams))
		for b, u := range p.Beams {
			t := p.Steering(u, d)
			y, err := linalg.SolveLower(l, t)
			if err != nil {
				return nil, fmt.Errorf("stap: solve bin %d beam %d: %w", d, b, err)
			}
			w, err := linalg.SolveUpperH(l, y)
			if err != nil {
				return nil, fmt.Errorf("stap: solve bin %d beam %d: %w", d, b, err)
			}
			// Normalise for unit gain on the steering direction:
			// w <- w / (t^H w), the MVDR distortionless response.
			g := linalg.Dot(t, w)
			if g != 0 {
				for k := range w {
					w[k] /= g
				}
			}
			perBeam[b] = w
		}
		ws.W[i] = perBeam
	}
	return ws, nil
}

// ComputeWeights computes adaptive weights for the listed Doppler bins
// from the Doppler-filtered cube dc — EstimateCovariances followed by
// SolveWeights. The returned set's Seq is dc.Seq.
func ComputeWeights(p *Params, dc *DopplerCube, bins []int, hard bool) (*WeightSet, error) {
	covs, err := EstimateCovariances(p, dc, bins, hard)
	if err != nil {
		return nil, err
	}
	return SolveWeights(p, covs, bins, dc.Seq)
}

// CovarianceSmoother blends per-bin covariance estimates across CPIs with
// an exponential forgetting factor lambda in [0, 1):
//
//	R_k = lambda * R_{k-1} + (1 - lambda) * Rhat_k
//
// Real systems smooth their training this way to stabilise the weights in
// slowly varying interference; lambda = 0 reproduces per-CPI SMI.
type CovarianceSmoother struct {
	Lambda float64
	prev   []*linalg.Matrix
}

// Update blends the new estimates into the running state and returns the
// smoothed covariances (aliasing the internal state; do not mutate).
func (s *CovarianceSmoother) Update(est []*linalg.Matrix) []*linalg.Matrix {
	if s.Lambda <= 0 || s.prev == nil {
		s.prev = est
		if s.Lambda > 0 {
			// Keep an independent copy so later blends don't mutate the
			// caller's matrices.
			s.prev = make([]*linalg.Matrix, len(est))
			for i, m := range est {
				s.prev[i] = m.Clone()
			}
		}
		return s.prev
	}
	l := complex(s.Lambda, 0)
	nl := complex(1-s.Lambda, 0)
	for i, m := range est {
		pm := s.prev[i]
		for j := range pm.Data {
			pm.Data[j] = l*pm.Data[j] + nl*m.Data[j]
		}
	}
	return s.prev
}

// InitialWeights returns non-adaptive (conventional beamformer) weights for
// the listed bins: w = t / (t^H t). The pipeline uses them for the first
// CPI, before any previous-CPI training data exists.
func InitialWeights(p *Params, bins []int) *WeightSet {
	ws := &WeightSet{Bins: append([]int(nil), bins...), W: make([][][]complex128, len(bins))}
	for i, d := range bins {
		perBeam := make([][]complex128, len(p.Beams))
		for b, u := range p.Beams {
			t := p.Steering(u, d)
			g := linalg.Dot(t, t)
			w := make([]complex128, len(t))
			for k := range t {
				w[k] = t[k] / g
			}
			perBeam[b] = w
		}
		ws.W[i] = perBeam
	}
	return ws
}

func setName(hard bool) string {
	if hard {
		return "hard"
	}
	return "easy"
}
