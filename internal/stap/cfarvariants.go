package stap

import (
	"fmt"
	"math"
	"slices"
)

// CFARKind selects the noise-level estimator used by the CFAR detector.
type CFARKind int

const (
	// CFARCellAveraging is the classic CA-CFAR: the mean of all reference
	// cells (the paper-era default and this library's default).
	CFARCellAveraging CFARKind = iota
	// CFARGreatestOf (GOCA) takes the greater of the leading and lagging
	// window means — robust at clutter edges, slightly higher CFAR loss.
	CFARGreatestOf
	// CFARSmallestOf (SOCA) takes the smaller of the two window means —
	// preserves sensitivity next to interfering targets, fragile at
	// clutter edges.
	CFARSmallestOf
	// CFAROrderedStatistic (OS-CFAR) uses the k-th smallest reference
	// cell (k = 3/4 of the window by default) — robust against multiple
	// interfering targets.
	CFAROrderedStatistic
)

// String implements fmt.Stringer.
func (k CFARKind) String() string {
	switch k {
	case CFARCellAveraging:
		return "CA"
	case CFARGreatestOf:
		return "GOCA"
	case CFARSmallestOf:
		return "SOCA"
	case CFAROrderedStatistic:
		return "OS"
	default:
		return fmt.Sprintf("CFARKind(%d)", int(k))
	}
}

// CFARWith runs the selected CFAR variant along range on the listed
// (beam, bin) profiles of bc (all when pairs is nil). The geometry and
// threshold come from p.CFAR, as with the default detector.
func CFARWith(p *Params, kind CFARKind, bc *BeamCube, pairs []BeamBin) ([]Detection, error) {
	return CFARWithScratch(p, kind, bc, pairs, nil)
}

// CFARWithScratch is CFARWith with a caller-owned scratch, the form the
// pipeline's CFAR workers use so a steady-state CPI with no threshold
// crossings allocates nothing. sc may be nil (a fresh scratch is built).
func CFARWithScratch(p *Params, kind CFARKind, bc *BeamCube, pairs []BeamBin, sc *CFARScratch) ([]Detection, error) {
	if kind == CFARCellAveraging {
		return cfarCA(p, bc, pairs, sc)
	}
	if pairs == nil {
		pairs = AllBeamBins(bc.Beams, bc.Bins)
	}
	if sc == nil || len(sc.power) < bc.Ranges {
		w := p.CFAR.Window
		sc = &CFARScratch{
			power: make([]float64, bc.Ranges),
			lead:  make([]float64, 0, w),
			lag:   make([]float64, 0, w),
			os:    make([]float64, 0, 2*w),
		}
	}
	alpha := math.Pow(10, float64(p.CFAR.ThresholdDB)/10)
	g, w := p.CFAR.Guard, p.CFAR.Window
	var dets []Detection
	power := sc.power[:bc.Ranges]
	lead := sc.lead
	lag := sc.lag
	osBuf := sc.os
	for _, pb := range pairs {
		if pb.Beam < 0 || pb.Beam >= bc.Beams || pb.Bin < 0 || pb.Bin >= bc.Bins {
			return nil, fmt.Errorf("stap: beam/bin pair %+v out of range", pb)
		}
		prof := bc.Profile(pb.Beam, pb.Bin)
		for r, v := range prof {
			power[r] = real(v)*real(v) + imag(v)*imag(v)
		}
		for r := 0; r < bc.Ranges; r++ {
			lead = lead[:0]
			lag = lag[:0]
			for k := g + 1; k <= g+w; k++ {
				if r-k >= 0 {
					lead = append(lead, power[r-k])
				}
				if r+k < bc.Ranges {
					lag = append(lag, power[r+k])
				}
			}
			var noise float64
			switch kind {
			case CFARGreatestOf, CFARSmallestOf:
				if len(lead) == 0 && len(lag) == 0 {
					continue
				}
				ml, ok1 := meanOf(lead)
				mg, ok2 := meanOf(lag)
				switch {
				case !ok1:
					noise = mg
				case !ok2:
					noise = ml
				case kind == CFARGreatestOf:
					noise = math.Max(ml, mg)
				default:
					noise = math.Min(ml, mg)
				}
			case CFAROrderedStatistic:
				osBuf = append(osBuf[:0], lead...)
				osBuf = append(osBuf, lag...)
				if len(osBuf) == 0 {
					continue
				}
				slices.Sort(osBuf)
				k := (3 * len(osBuf)) / 4
				if k >= len(osBuf) {
					k = len(osBuf) - 1
				}
				noise = osBuf[k]
			default:
				return nil, fmt.Errorf("stap: unknown CFAR kind %d", int(kind))
			}
			thr := noise * alpha
			if power[r] > thr && thr > 0 {
				dets = append(dets, Detection{
					Seq:       bc.Seq,
					Beam:      pb.Beam,
					Bin:       pb.Bin,
					Range:     r,
					Power:     power[r],
					Threshold: thr,
				})
			}
		}
	}
	SortDetections(dets)
	return dets, nil
}

func meanOf(x []float64) (float64, bool) {
	if len(x) == 0 {
		return 0, false
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x)), true
}
