package stap

import (
	"fmt"

	"stapio/internal/linalg"
)

// BeamCube holds beamformed (and later pulse-compressed) data:
// Data[((b*Bins)+d)*Ranges + r] is the output of beam b at Doppler bin d,
// range gate r. Bins indexes all Doppler bins (easy and hard interleaved in
// natural bin order).
type BeamCube struct {
	Beams, Bins, Ranges int
	Data                []complex128
	Seq                 uint64
}

// NewBeamCube allocates a zeroed beam cube.
func NewBeamCube(p *Params) *BeamCube {
	return &BeamCube{
		Beams:  len(p.Beams),
		Bins:   p.Bins(),
		Ranges: p.Dims.Ranges,
		Data:   make([]complex128, len(p.Beams)*p.Bins()*p.Dims.Ranges),
	}
}

// Profile returns the range profile for (beam, bin) aliasing the storage.
func (bc *BeamCube) Profile(b, d int) []complex128 {
	off := ((b * bc.Bins) + d) * bc.Ranges
	return bc.Data[off : off+bc.Ranges]
}

// Beamform applies the weight set to the listed Doppler bins of dc,
// writing the per-beam range profiles into out. Bins not listed are left
// untouched, so the easy and hard beamforming tasks fill disjoint slices
// of the same output cube — even concurrently, since Beamform writes only
// the listed bins' profiles and never touches shared fields (the caller
// sets out.Seq). The weight set must cover every listed bin.
func Beamform(p *Params, dc *DopplerCube, ws *WeightSet, bins []int, out *BeamCube) error {
	if out.Bins != p.Bins() || out.Ranges != p.Dims.Ranges || out.Beams != len(p.Beams) {
		return fmt.Errorf("stap: beam cube geometry mismatch")
	}
	for _, d := range bins {
		perBeam := ws.For(d)
		if perBeam == nil {
			return fmt.Errorf("stap: weight set does not cover bin %d", d)
		}
		dof := p.DoF(d)
		for b := range p.Beams {
			w := perBeam[b]
			if len(w) != dof {
				return fmt.Errorf("stap: bin %d beam %d weight length %d, want %d", d, b, len(w), dof)
			}
			prof := out.Profile(b, d)
			for r := 0; r < dc.Ranges; r++ {
				snap := dc.Snapshot(d, r)[:dof]
				prof[r] = linalg.Dot(w, snap)
			}
		}
	}
	return nil
}
