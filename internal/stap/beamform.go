package stap

import (
	"fmt"

	"stapio/internal/linalg"
)

// BeamCube holds beamformed (and later pulse-compressed) data:
// Data[((b*Bins)+d)*Ranges + r] is the output of beam b at Doppler bin d,
// range gate r. Bins indexes all Doppler bins (easy and hard interleaved in
// natural bin order).
type BeamCube struct {
	Beams, Bins, Ranges int
	Data                []complex128
	Seq                 uint64
}

// NewBeamCube allocates a zeroed beam cube.
func NewBeamCube(p *Params) *BeamCube {
	return &BeamCube{
		Beams:  len(p.Beams),
		Bins:   p.Bins(),
		Ranges: p.Dims.Ranges,
		Data:   make([]complex128, len(p.Beams)*p.Bins()*p.Dims.Ranges),
	}
}

// Profile returns the range profile for (beam, bin) aliasing the storage.
func (bc *BeamCube) Profile(b, d int) []complex128 {
	off := ((b * bc.Bins) + d) * bc.Ranges
	return bc.Data[off : off+bc.Ranges]
}

// WeightLengthError reports a weight vector whose length does not match
// its bin's degrees of freedom. Beamforming validates every (bin, beam)
// pair up front and returns this before writing anything, so a mismatched
// set can never surface mid-cube.
type WeightLengthError struct {
	Bin, Beam int
	Len, Want int
}

func (e *WeightLengthError) Error() string {
	return fmt.Sprintf("stap: bin %d beam %d weight length %d, want %d", e.Bin, e.Beam, e.Len, e.Want)
}

// validateWeights checks that ws covers every listed bin with one weight
// vector of the bin's DoF per beam, before any output is written.
func validateWeights(p *Params, ws *WeightSet, bins []int) error {
	for _, d := range bins {
		perBeam := ws.For(d)
		if perBeam == nil {
			return fmt.Errorf("stap: weight set does not cover bin %d", d)
		}
		dof := p.DoF(d)
		for b := range p.Beams {
			if len(perBeam[b]) != dof {
				return &WeightLengthError{Bin: d, Beam: b, Len: len(perBeam[b]), Want: dof}
			}
		}
	}
	return nil
}

// Beamform applies the weight set to the listed Doppler bins of dc,
// writing the per-beam range profiles into out. Bins not listed are left
// untouched, so the easy and hard beamforming tasks fill disjoint slices
// of the same output cube — even concurrently, since Beamform writes only
// the listed bins' profiles and never touches shared fields (the caller
// sets out.Seq). The weight set must cover every listed bin; weight
// lengths are validated for all (bin, beam) pairs before the first sample
// is written (see WeightLengthError).
func Beamform(p *Params, dc *DopplerCube, ws *WeightSet, bins []int, out *BeamCube) error {
	if out.Bins != p.Bins() || out.Ranges != p.Dims.Ranges || out.Beams != len(p.Beams) {
		return fmt.Errorf("stap: beam cube geometry mismatch")
	}
	if err := validateWeights(p, ws, bins); err != nil {
		return err
	}
	for _, d := range bins {
		beamformBin(dc, ws.For(d), d, p.DoF(d), 0, out)
	}
	return nil
}

// beamformBin computes one bin's (Beams x DoF) x (DoF x Ranges) panel
// product: the bin's snapshots form a contiguous row panel of the Doppler
// cube, streamed once per strip of up to three beams by the
// linalg.ConjDotPanel kernels — each loaded snapshot feeds every strip
// accumulator, and each beam's output gates are one contiguous row. The
// kernels' fused-lane reduction is fixed and platform independent, and is
// shared by the full-cube and banded paths, so detections are
// byte-identical across band sizes and worker counts. Output gates start
// at lo (non-zero for band slabs).
func beamformBin(dc *DopplerCube, perBeam [][]complex128, d, dof, lo int, out *BeamCube) {
	sl := dc.SnapLen
	panel := dc.Data[d*dc.Ranges*sl : (d+1)*dc.Ranges*sl]
	stride := out.Bins * out.Ranges
	dOff := d*out.Ranges + lo
	n := dc.Ranges
	for b := 0; b < len(perBeam); b += 3 {
		o := dOff + b*stride
		switch len(perBeam) - b {
		case 1:
			linalg.ConjDotPanel1(panel, sl, dof, n,
				perBeam[b],
				out.Data[o:o+n])
		case 2:
			linalg.ConjDotPanel2(panel, sl, dof, n,
				perBeam[b], perBeam[b+1],
				out.Data[o:o+n], out.Data[o+stride:o+stride+n])
		default:
			linalg.ConjDotPanel3(panel, sl, dof, n,
				perBeam[b], perBeam[b+1], perBeam[b+2],
				out.Data[o:o+n], out.Data[o+stride:o+stride+n], out.Data[o+2*stride:o+2*stride+n])
		}
	}
}
