package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProfilesValid(t *testing.T) {
	for _, p := range []Profile{Paragon(), SP(), Modern()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := Profile{Name: "x", NodeMFlops: 0, NodeBandwidth: 1}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero MFlops")
	}
	bad2 := Profile{Name: "x", NodeMFlops: 1, NodeBandwidth: 1, MsgLatency: -1}
	if err := bad2.Validate(); err == nil {
		t.Error("expected error for negative latency")
	}
}

func TestSPFasterCPUSlowerNetwork(t *testing.T) {
	// The paper's premise: SP CPUs are faster, its file/network path is
	// the limiter.
	if SP().NodeMFlops <= Paragon().NodeMFlops {
		t.Error("SP nodes must be faster than Paragon nodes")
	}
	if SP().NodeBandwidth >= Paragon().NodeBandwidth {
		t.Error("SP per-node bandwidth must be below Paragon mesh bandwidth")
	}
}

func TestModernProfileIsIOBound(t *testing.T) {
	// On the modern profile, the paper's whole per-CPI compute (~0.4
	// GFLOP) takes only a few milliseconds on a handful of nodes — less
	// than a single 16 MiB read from the 1990s-parameterised PFS, so the
	// file system dominates by construction.
	m := Modern()
	computeAll := m.ComputeTime(4e8, 8)
	if computeAll > 0.011 {
		t.Errorf("modern compute time %.4fs implausibly slow", computeAll)
	}
	if m.NodeMFlops < 20*SP().NodeMFlops {
		t.Error("modern nodes should dwarf the SP's")
	}
}

func TestComputeTimeScaling(t *testing.T) {
	p := Paragon()
	t1 := p.ComputeTime(1e9, 10)
	t2 := p.ComputeTime(1e9, 20)
	if math.Abs(t1/t2-2) > 1e-12 {
		t.Errorf("doubling nodes should halve compute time: %v vs %v", t1, t2)
	}
	// NodeMFlops * 1e6 flops on 1 node = 1 s.
	if got := p.ComputeTime(p.NodeMFlops*1e6, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("ComputeTime = %v, want 1", got)
	}
}

func TestCommTime(t *testing.T) {
	p := Profile{Name: "t", NodeMFlops: 1, MsgLatency: 1e-3, NodeBandwidth: 1e6}
	// 1 MB from 1 node to 1 node: 1 msg latency + 1 s transfer.
	got := p.CommTime(1e6, 1, 1)
	if math.Abs(got-1.001) > 1e-9 {
		t.Errorf("CommTime = %v, want 1.001", got)
	}
	// 4 senders to 8 receivers: 2 messages each, parallel transfer.
	got = p.CommTime(4e6, 4, 8)
	want := 2e-3 + 1.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("CommTime = %v, want %v", got, want)
	}
	// More senders never slow the transfer down.
	if p.CommTime(1e6, 8, 8) > p.CommTime(1e6, 4, 8)+1e-12 {
		t.Error("more senders should not increase comm time")
	}
}

func TestOverheadMonotone(t *testing.T) {
	p := Paragon()
	prev := -1.0
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		v := p.Overhead(n, 1)
		if v < prev {
			t.Errorf("Overhead not monotone at %d nodes", n)
		}
		prev = v
	}
	// Per-kernel component: a 2-kernel task costs one extra KernelOverhead.
	if got, want := p.Overhead(4, 2)-p.Overhead(4, 1), p.KernelOverhead; math.Abs(got-want) > 1e-12 {
		t.Errorf("kernel overhead increment = %v, want %v", got, want)
	}
	// Merge-neutrality: V(P5+P6, k5+k6) == V(P5,k5) + V(P6,k6): combining
	// tasks neither creates nor destroys overhead, the paper's assumption.
	got := p.Overhead(12, 1) + p.Overhead(8, 1)
	if math.Abs(p.Overhead(20, 2)-got) > 1e-12 {
		t.Errorf("overhead not merge-neutral: %v vs %v", p.Overhead(20, 2), got)
	}
}

func TestMergeComputeInequalityProperty(t *testing.T) {
	// Paper eq. (9): (W5+W6)/(P5+P6) - W5/P5 - W6/P6 < 0 for any positive
	// workloads and node counts — the compute side of task combination
	// never loses.
	p := Paragon()
	f := func(w5raw, w6raw uint32, p5raw, p6raw uint8) bool {
		w5 := float64(w5raw%1e6) + 1
		w6 := float64(w6raw%1e6) + 1
		p5 := int(p5raw%32) + 1
		p6 := int(p6raw%32) + 1
		sep := p.ComputeTime(w5, p5) + p.ComputeTime(w6, p6)
		merged := p.ComputeTime(w5+w6, p5+p6)
		return merged <= sep+1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMergeFasterAtRealisticScale(t *testing.T) {
	// With paper-scale workloads (hundreds of MFLOPs per CPI) the merged
	// task beats the two separate stages even including the V(P) overhead
	// term — the paper's eq. (11). At trivial workloads the overhead can
	// dominate and the inequality need not hold, which is why this is not
	// a property over arbitrary inputs.
	for _, prof := range []Profile{Paragon(), SP()} {
		for _, cfg := range []struct {
			w5, w6 float64
			p5, p6 int
		}{
			{3e8, 1e8, 8, 4},
			{5e8, 5e8, 16, 16},
			{1e9, 2e8, 24, 8},
		} {
			sep := prof.ComputeTime(cfg.w5, cfg.p5) + prof.Overhead(cfg.p5, 1) +
				prof.ComputeTime(cfg.w6, cfg.p6) + prof.Overhead(cfg.p6, 1)
			merged := prof.ComputeTime(cfg.w5+cfg.w6, cfg.p5+cfg.p6) + prof.Overhead(cfg.p5+cfg.p6, 2)
			if merged >= sep {
				t.Errorf("%s %+v: merged %g >= separate %g", prof.Name, cfg, merged, sep)
			}
		}
	}
}

func TestPanics(t *testing.T) {
	p := Paragon()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("ComputeTime", func() { p.ComputeTime(1, 0) })
	mustPanic("CommTime", func() { p.CommTime(1, 0, 1) })
	mustPanic("Overhead nodes", func() { p.Overhead(0, 1) })
	mustPanic("Overhead kernels", func() { p.Overhead(1, 0) })
}
