// Package machine models the parallel computers of the paper — the Intel
// Paragon at Caltech and the IBM SP at Argonne — as parameterised profiles:
// per-node compute rate, message-passing latency and bandwidth, and a
// parallelisation-overhead model. The discrete-event pipeline simulator
// converts task workloads (FLOPs, bytes) into execution times through a
// profile, following the paper's decomposition
//
//	T_i = W_i / P_i + C_i + V_i
//
// (equation (6)): the evenly partitioned compute time, the communication
// time, and the residual parallelisation overhead.
//
// The absolute constants are calibrated so the simulated pipeline lands in
// the same operating regime as the paper's tables (throughputs of a few
// CPIs per second at 50-200 nodes on 16 MB CPIs); they are not measurements
// of the historical hardware.
package machine

import (
	"fmt"
)

// Profile describes one machine.
type Profile struct {
	// Name identifies the machine in reports ("Paragon", "SP").
	Name string
	// NodeMFlops is the sustained per-node floating-point rate in MFLOP/s.
	NodeMFlops float64
	// MsgLatency is the per-message software + wire latency in seconds.
	MsgLatency float64
	// NodeBandwidth is the per-node sustained network bandwidth in
	// bytes/second.
	NodeBandwidth float64
	// KernelOverhead is the fixed per-CPI cost of running one processing
	// kernel (buffer management, loop setup, pipeline synchronisation).
	// A task combining k kernels pays k times this cost — combining tasks
	// does not eliminate the kernels, matching the paper's assumption
	// that V is tied to the subroutines being parallelised.
	KernelOverhead float64
	// NodeOverhead is the per-node, per-CPI coordination cost
	// (scatter/gather bookkeeping grows with the node count), so
	// V_i = KernelOverhead*kernels + NodeOverhead*P_i. It cancels exactly
	// under task combination (P_5 + P_6 nodes keep their cost), which is
	// why the paper can treat V as negligible in the merge algebra.
	NodeOverhead float64
}

// Validate checks the profile constants.
func (p Profile) Validate() error {
	if p.NodeMFlops <= 0 || p.NodeBandwidth <= 0 {
		return fmt.Errorf("machine: profile %q has non-positive rates", p.Name)
	}
	if p.MsgLatency < 0 || p.KernelOverhead < 0 || p.NodeOverhead < 0 {
		return fmt.Errorf("machine: profile %q has negative latency/overhead", p.Name)
	}
	return nil
}

// ComputeTime returns W/P: the time for nodes to execute flops of evenly
// partitioned work.
func (p Profile) ComputeTime(flops float64, nodes int) float64 {
	if nodes < 1 {
		panic(fmt.Sprintf("machine: ComputeTime with %d nodes", nodes))
	}
	return flops / (p.NodeMFlops * 1e6 * float64(nodes))
}

// CommTime returns the time for sendNodes to transfer bytes to recvNodes:
// each sender addresses ceil(recvNodes/sendNodes) receivers (at least one
// message), all senders streaming in parallel at NodeBandwidth. This is the
// C_i term for one pipeline edge.
func (p Profile) CommTime(bytes float64, sendNodes, recvNodes int) float64 {
	if sendNodes < 1 || recvNodes < 1 {
		panic(fmt.Sprintf("machine: CommTime with %d->%d nodes", sendNodes, recvNodes))
	}
	msgs := (recvNodes + sendNodes - 1) / sendNodes
	if msgs < 1 {
		msgs = 1
	}
	return p.MsgLatency*float64(msgs) + bytes/(float64(sendNodes)*p.NodeBandwidth)
}

// Overhead returns V_i = KernelOverhead*kernels + NodeOverhead*nodes, the
// residual parallelisation overhead of a task of `kernels` processing
// kernels on `nodes` nodes. The per-node component reproduces the paper's
// observation that "scalability of the parallelization tends to decrease
// when more processors are used": as node counts double, the shrinking
// compute term leaves these fixed costs a growing share of every task.
func (p Profile) Overhead(nodes, kernels int) float64 {
	if nodes < 1 || kernels < 1 {
		panic(fmt.Sprintf("machine: Overhead with %d nodes, %d kernels", nodes, kernels))
	}
	return p.KernelOverhead*float64(kernels) + p.NodeOverhead*float64(nodes)
}

// Paragon returns the Intel Paragon-like profile: slow i860 nodes on a
// fast mesh interconnect.
func Paragon() Profile {
	return Profile{
		Name:           "Paragon",
		NodeMFlops:     33,
		MsgLatency:     60e-6,
		NodeBandwidth:  70e6,
		KernelOverhead: 10e-3,
		NodeOverhead:   30e-6,
	}
}

// SP returns the IBM SP-like profile: much faster P2SC nodes on a
// lower-bandwidth switch ("even though the SP has faster CPUs").
func SP() Profile {
	return Profile{
		Name:           "SP",
		NodeMFlops:     132,
		MsgLatency:     40e-6,
		NodeBandwidth:  34e6,
		KernelOverhead: 4e-3,
		NodeOverhead:   20e-6,
	}
}

// Modern returns a present-day commodity cluster profile (multi-GFLOP/s
// cores, 10 GbE-class networking, microsecond software overheads) — a
// "what would this workload look like today" point of comparison: the
// compute that saturated 200 Paragon nodes fits in a handful of cores,
// and the parallel file system becomes the entire story.
func Modern() Profile {
	return Profile{
		Name:           "Modern",
		NodeMFlops:     5000,
		MsgLatency:     10e-6,
		NodeBandwidth:  1.1e9,
		KernelOverhead: 200e-6,
		NodeOverhead:   5e-6,
	}
}
